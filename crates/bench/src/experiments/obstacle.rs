//! **E7** — the obstacle problem under asynchronous relaxation (\[26\]).
//!
//! Paper context: "asynchronous iterative algorithms performing a huge
//! amount of data exchanges for the solution of the obstacle problem
//! have been carried out with success … on several supercomputers such
//! as the IBM SP4". The projected relaxation operator is an M-matrix
//! relaxation: monotone, hence asynchronously convergent from above.
//!
//! Measured: iterations to reach `ε` under sync / Gauss–Seidel /
//! chaotic / out-of-order / unbounded schedules (per-component update
//! counts normalised), monotonicity of the iterate under asynchronous
//! execution, and the complementarity (LCP) residuals of every final
//! iterate.

use crate::ExpContext;
use asynciter_core::session::{Replay, Session};
use asynciter_core::stopping::StoppingRule;
use asynciter_models::schedule::{
    ChaoticBounded, CyclicCoordinate, ScheduleGen, SyncJacobi, UnboundedSqrtDelay,
};
use asynciter_opt::obstacle::{ObstacleProblem, ProjectedJacobi};
use asynciter_opt::traits::Operator;
use asynciter_report::csv::CsvWriter;
use asynciter_report::table::TextTable;

/// Runs E7.
pub fn run(seed: u64, quick: bool) {
    let mut ctx = ExpContext::new("E7", seed);
    let grid = if quick { 16 } else { 32 };
    let problem = ObstacleProblem::bump(grid, grid, 0.6).expect("problem");
    let n = problem.dim();
    let ustar = problem
        .reference_solution(1e-13, 400_000)
        .expect("reference");
    let contacts = problem.contact_count(&ustar, 1e-9);
    ctx.log(format!(
        "obstacle problem {grid}×{grid} (n={n}): contact set {contacts} points, \
         max u* = {:.4}",
        ustar.iter().cloned().fold(0.0_f64, f64::max)
    ));
    let op = ProjectedJacobi::new(problem);
    let x0 = op.upper_start();
    let eps = 1e-9;

    let mut table = TextTable::new(&[
        "schedule",
        "steps to eps",
        "sweeps-equivalent",
        "feasibility",
        "neg. residual",
        "complementarity",
    ]);
    let mut csv = CsvWriter::new(&["schedule", "steps", "sweeps_eq", "feas", "resid", "comp"]);
    let cases: Vec<(&str, Box<dyn ScheduleGen>, f64)> = vec![
        ("sync-jacobi", Box::new(SyncJacobi::new(n)), n as f64),
        ("gauss-seidel", Box::new(CyclicCoordinate::new(n)), 1.0),
        (
            "chaotic-ooo(b=20)",
            Box::new(ChaoticBounded::new(n, n / 8, n / 2, 20, false, seed)),
            (n as f64) * 5.0 / 16.0,
        ),
        (
            "unbounded-sqrt",
            Box::new(UnboundedSqrtDelay::new(n, n / 8, n / 2, 0.5, seed + 1)),
            (n as f64) * 5.0 / 16.0,
        ),
    ];
    for (name, gen, comps_per_step) in cases {
        let res = Session::new(&op)
            .steps(20_000_000)
            .schedule(gen)
            .x0(x0.clone())
            .xstar(ustar.clone())
            .stopping(StoppingRule::ErrorBelow {
                eps,
                check_every: (n as u64) / 2,
            })
            .backend(Replay)
            .run()
            .expect("replay");
        assert!(res.stopped_early, "{name} did not reach eps");
        let (feas, resid, comp) = op.problem().complementarity_residuals(&res.final_x);
        let sweeps = res.steps as f64 * comps_per_step / n as f64;
        table.row(&[
            name.to_string(),
            res.steps.to_string(),
            format!("{sweeps:.0}"),
            format!("{feas:.1e}"),
            format!("{resid:.1e}"),
            format!("{comp:.1e}"),
        ]);
        csv.row_strings(&[
            name.into(),
            res.steps.to_string(),
            format!("{sweeps:.1}"),
            format!("{feas:.3e}"),
            format!("{resid:.3e}"),
            format!("{comp:.3e}"),
        ]);
        assert!(
            feas < 1e-8 && comp < 1e-4,
            "{name}: LCP residuals too large"
        );
    }
    ctx.log(table.render());

    // Monotone convergence from above under asynchronous schedules — the
    // property flexible communication exploits in [26]. Monotone decrease
    // needs *in-order* (FIFO) consumption: F is monotone, so an update
    // that re-reads an OLDER (larger) snapshot than its predecessor can
    // produce a larger value. With FIFO labels violations must be zero;
    // with out-of-order labels they appear — yet convergence still holds
    // (conditions (a)–(c) are untouched).
    let steps = if quick { 2_000 } else { 10_000 };
    let count_violations = |fifo: bool| -> u64 {
        let mut gen = ChaoticBounded::new(n, n / 4, n / 2, 10, fifo, seed + 5);
        let mut x = x0.clone();
        let mut violations = 0u64;
        let mut buf = asynciter_models::schedule::StepBuf::new(n);
        let mut hist = asynciter_core::engine::History::new(&x0);
        let mut xl = vec![0.0; n];
        for j in 1..=steps {
            gen.step(j, &mut buf);
            hist.assemble(&buf.labels, &mut xl);
            for &i in &buf.active {
                let v = op.component(i, &xl);
                if v > x[i] + 1e-12 {
                    violations += 1;
                }
                x[i] = v;
                hist.push(i, j, v);
            }
        }
        violations
    };
    let fifo_viol = count_violations(true);
    let ooo_viol = count_violations(false);
    ctx.log(format!(
        "monotone decrease from the super-solution over {steps} asynchronous steps: \
         {fifo_viol} violations with FIFO labels (must be 0), {ooo_viol} with out-of-order \
         labels (re-reading an older, larger snapshot breaks per-step monotonicity while \
         convergence itself is untouched)"
    ));
    assert_eq!(
        fifo_viol, 0,
        "FIFO asynchronous iterates must decrease monotonically"
    );
    assert!(
        ooo_viol > 0,
        "out-of-order reads should break strict monotonicity"
    );
    csv.save(&ctx.dir().join("obstacle.csv")).expect("save csv");
    ctx.finish();
}
