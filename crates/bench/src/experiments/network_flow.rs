//! **E8** — convex network flow via asynchronous dual relaxation
//! (Bertsekas–El Baz \[6\], El Baz \[7\]/\[8\]).
//!
//! Paper context: the distributed relaxation method for strictly convex
//! network flow — each node adjusts its price to meet its own balance —
//! was the first convex-optimisation method proved totally
//! asynchronously convergent. The grounded price-relaxation operator is
//! substochastic but *not* an `‖·‖_∞` contraction, so this experiment
//! also showcases the Perron-weight certificate: the weighted max norm
//! in which the theory actually contracts.
//!
//! Measured: balance-residual convergence under sync / chaotic /
//! out-of-order / unbounded schedules; the Perron contraction factor σ
//! vs observed per-macro-iteration decay; threaded async vs sync wall
//! time; and primal optimality (flow conservation + reduced costs) of
//! the final flows.

use crate::ExpContext;
use asynciter_core::session::{Replay, Session};
use asynciter_core::stopping::StoppingRule;
use asynciter_core::theory::{perron_weights, weighted_norm_bound};
use asynciter_models::partition::Partition;
use asynciter_models::schedule::{ChaoticBounded, ScheduleGen, SyncJacobi, UnboundedSqrtDelay};
use asynciter_numerics::sparse::CsrMatrix;
use asynciter_opt::network_flow::{NetworkFlowProblem, PriceRelaxation};
use asynciter_report::ascii::{log_line_chart, ChartSeries};
use asynciter_report::csv::CsvWriter;
use asynciter_report::table::TextTable;
use asynciter_runtime::session::{Barrier, SharedMem};

/// Builds the linear iteration matrix `|M|` of the grounded relaxation
/// (for the Perron certificate): `M[i][v] = (Σ_{arcs i↔v} 1/r_a) / κ_i`
/// for `i ≠ ground`, and the ground row is zero (its component is
/// constant).
fn iteration_matrix(op: &PriceRelaxation) -> CsrMatrix {
    let p = op.problem();
    let n = p.num_nodes();
    let mut weights = vec![0.0; n];
    let mut trip: Vec<(usize, usize, f64)> = Vec::new();
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        if i == op.ground() {
            continue;
        }
        // κ_i and neighbour couplings.
        let mut kappa = 0.0;
        let mut couplings: std::collections::BTreeMap<usize, f64> = Default::default();
        for a in p.arcs() {
            let other = if a.tail == i {
                Some(a.head)
            } else if a.head == i {
                Some(a.tail)
            } else {
                None
            };
            if let Some(o) = other {
                kappa += 1.0 / a.r;
                *couplings.entry(o).or_insert(0.0) += 1.0 / a.r;
            }
        }
        weights[i] = kappa;
        for (o, w) in couplings {
            if o != op.ground() {
                trip.push((i, o, w / kappa));
            }
        }
    }
    CsrMatrix::from_triplets(n, n, &trip).expect("matrix")
}

/// Runs E8.
pub fn run(seed: u64, quick: bool) {
    let mut ctx = ExpContext::new("E8", seed);
    let nodes = if quick { 24 } else { 64 };
    let extra = nodes + nodes / 2;
    let problem = NetworkFlowProblem::random(nodes, extra, seed).expect("instance");
    let op = PriceRelaxation::new(problem.clone(), 0).expect("operator");
    let pstar = problem.exact_prices(0).expect("exact prices");
    ctx.log(format!(
        "transshipment network: {nodes} nodes, {} arcs; exact dual solved by reduced Laplacian",
        problem.arcs().len()
    ));

    // Perron certificate.
    let m = iteration_matrix(&op);
    let (u, sigma) = perron_weights(&m, 20_000).expect("perron");
    let inf_bound = weighted_norm_bound(&m, &vec![1.0; nodes]);
    ctx.log(format!(
        "contraction certificates: plain ‖M‖_∞ = {inf_bound:.4} (≥ 1: useless), \
         Perron-weighted σ = {sigma:.4} (< 1: certifies totally asynchronous convergence)"
    ));
    assert!(sigma < 1.0, "Perron certificate failed: {sigma}");
    assert!(
        inf_bound >= 0.999,
        "instance should not be trivially inf-contracting"
    );

    // Convergence under schedules.
    let steps: u64 = if quick { 30_000 } else { 120_000 };
    let x0 = vec![0.0; nodes];
    let mut table = TextTable::new(&["schedule", "steps", "balance residual", "error ‖p−p*‖_u"]);
    let mut csv = CsvWriter::new(&["schedule", "steps", "residual", "werror"]);
    let wnorm =
        asynciter_numerics::norm::WeightedMaxNorm::new(u.iter().map(|&w| w.max(1e-6)).collect())
            .expect("weights");
    let mut series = Vec::new();
    let cases: Vec<(&str, Box<dyn ScheduleGen>)> = vec![
        ("sync", Box::new(SyncJacobi::new(nodes))),
        (
            "chaotic-ooo(b=16)",
            Box::new(ChaoticBounded::new(
                nodes,
                nodes / 4,
                nodes / 2,
                16,
                false,
                seed,
            )),
        ),
        (
            "unbounded-sqrt",
            Box::new(UnboundedSqrtDelay::new(
                nodes,
                nodes / 4,
                nodes / 2,
                1.0,
                seed + 1,
            )),
        ),
    ];
    for (name, gen) in cases {
        let steps_case = if name == "sync" { steps / 20 } else { steps };
        let res = Session::new(&op)
            .steps(steps_case)
            .schedule(gen)
            .x0(x0.clone())
            .xstar(pstar.clone())
            .error_every((steps_case / 100).max(1))
            .backend(Replay)
            .run()
            .expect("replay");
        let resid = problem.balance_residual(&res.final_x);
        let werr = wnorm.dist(&res.final_x, &pstar);
        table.row(&[
            name.to_string(),
            res.steps.to_string(),
            format!("{resid:.3e}"),
            format!("{werr:.3e}"),
        ]);
        csv.row_strings(&[
            name.into(),
            res.steps.to_string(),
            format!("{resid:.6e}"),
            format!("{werr:.6e}"),
        ]);
        assert!(resid < 1e-6, "{name}: residual {resid}");
        series.push(ChartSeries::new(
            name,
            res.errors.iter().map(|&(j, e)| (j as f64, e)).collect(),
        ));
    }
    ctx.log(table.render());
    let chart = log_line_chart(
        &series,
        90,
        20,
        "E8 — ‖p(j) − p*‖_∞ under different delay regimes (log scale)",
    );
    ctx.log(&chart);
    ctx.save("network_flow_convergence.txt", &chart);

    // Primal optimality of the final flows.
    let flows = problem.flows(&pstar);
    let div = problem.divergence(&flows);
    let cons = div
        .iter()
        .zip(problem.supplies())
        .map(|(d, s)| (d - s).abs())
        .fold(0.0_f64, f64::max);
    ctx.log(format!(
        "primal check at p*: flow conservation residual {cons:.2e}, cost {:.4}",
        problem.primal_cost(&flows)
    ));

    // Threaded async vs sync with imbalance.
    let workers = 4;
    let partition = Partition::blocks(nodes, workers).expect("partition");
    let spin = asynciter_runtime::imbalance::linear_imbalance(
        workers,
        if quick { 2_000 } else { 5_000 },
        4.0,
    );
    let sync_res = Session::new(&op)
        .steps(1_000_000)
        .x0(x0.clone())
        .stopping(StoppingRule::Residual {
            eps: 1e-11,
            check_every: 1,
        })
        .backend(Barrier {
            threads: workers,
            partition: Some(partition.clone()),
            spin: spin.clone(),
        })
        .run()
        .expect("sync");
    let async_res = Session::new(&op)
        .steps(100_000_000)
        .x0(x0.clone())
        .stopping(StoppingRule::Residual {
            eps: 1e-10,
            check_every: 64,
        })
        .backend(SharedMem {
            threads: workers,
            partition: Some(partition.clone()),
            spin,
            ..SharedMem::default()
        })
        .run()
        .expect("async");
    ctx.log(format!(
        "threads (4 workers, 4x imbalance): sync {:.1} ms ({} sweeps) vs async {:.1} ms \
         ({} updates); both residuals ≤ 1e-9: sync {:.1e}, async {:.1e}",
        sync_res.wall.as_secs_f64() * 1e3,
        sync_res.steps,
        async_res.wall.as_secs_f64() * 1e3,
        async_res.steps,
        sync_res.final_residual,
        async_res.final_residual,
    ));
    csv.save(&ctx.dir().join("network_flow.csv"))
        .expect("save csv");
    ctx.finish();
}
