//! **E10** — stopping and termination detection (\[15\], \[22\]).
//!
//! Paper context: detecting convergence of asynchronous iterations is a
//! research problem of its own — \[15\] contributes a macro-iteration-based
//! stopping criterion, \[22\] a termination method for message-passing
//! systems. Naive rules (stop at the first quiet instant) can fire while
//! stale information is still in flight.
//!
//! Two measurements:
//!
//! 1. *Deterministic engines*: the macro-contraction rule of \[15\]
//!    (stop when the iterate moved ≤ ε(1−α)/α over a macro-iteration)
//!    must always certify the requested accuracy, vs the naive residual
//!    rule evaluated under stale reads.
//! 2. *Threaded runtime*: quiescence detection with a flush margin
//!    (\[22\]-style) vs the naive margin-0 rule, across seeds: premature
//!    stops and detection overhead.

use crate::ExpContext;
use asynciter_core::session::{Replay, Session};
use asynciter_core::stopping::StoppingRule;
use asynciter_models::partition::Partition;
use asynciter_models::schedule::ChaoticBounded;
use asynciter_numerics::norm::WeightedMaxNorm;
use asynciter_numerics::sparse::tridiagonal;
use asynciter_opt::linear::JacobiOperator;
use asynciter_report::csv::CsvWriter;
use asynciter_report::table::TextTable;
use asynciter_runtime::termination::{run_with_termination, TermConfig};

/// Runs E10.
pub fn run(seed: u64, quick: bool) {
    let mut ctx = ExpContext::new("E10", seed);
    let n = if quick { 32 } else { 64 };
    let op = JacobiOperator::new(tridiagonal(n, 4.0, -1.0), vec![1.0; n]).expect("operator");
    let xstar = op.solve_dense_spd().expect("reference");
    let alpha = op.contraction_factor();

    // Part 1: the [15] macro-contraction rule always certifies.
    let eps = 1e-8;
    let trials = if quick { 5 } else { 20 };
    let mut certified = 0usize;
    let mut total_steps = 0u64;
    for t in 0..trials {
        let res = Session::new(&op)
            .steps(50_000_000)
            .schedule(ChaoticBounded::new(
                n,
                n / 4,
                n / 2,
                24,
                false,
                seed + t as u64,
            ))
            .stopping(StoppingRule::MacroContraction {
                eps,
                alpha,
                norm: WeightedMaxNorm::uniform(n),
            })
            .backend(Replay)
            .run()
            .expect("replay");
        assert!(res.stopped_early, "macro rule never fired (trial {t})");
        let err = res.final_error(&xstar);
        if err <= eps {
            certified += 1;
        }
        total_steps += res.steps;
    }
    ctx.log(format!(
        "Part 1 ([15] macro-contraction rule, ε={eps:.0e}, α={alpha:.3}): \
         {certified}/{trials} stops certified (true error ≤ ε), mean stop step {}",
        total_steps / trials as u64
    ));
    assert_eq!(
        certified, trials,
        "macro-contraction rule must never stop early"
    );

    // Part 2: threaded quiescence detection, margin sweep.
    let workers = 4;
    let partition = Partition::blocks(n, workers).expect("partition");
    let quiet_eps = 1e-10;
    let good_resid = 1e-7; // "converged enough" oracle line
    let seeds = if quick { 6 } else { 20 };
    let mut table = TextTable::new(&[
        "margin",
        "runs",
        "detected",
        "premature",
        "mean updates",
        "mean residual",
    ]);
    let mut csv = CsvWriter::new(&[
        "margin",
        "runs",
        "detected",
        "premature",
        "mean_updates",
        "mean_residual",
    ]);
    for margin in [0u64, 64, 1024, 16384] {
        let mut detected = 0usize;
        let mut premature = 0usize;
        let mut updates = 0u64;
        let mut resid_sum = 0.0;
        for _ in 0..seeds {
            let cfg = TermConfig {
                workers,
                max_updates: 5_000_000,
                eps: quiet_eps,
                streak: 6,
                margin,
            };
            let res = run_with_termination(&op, &vec![0.0; n], &partition, &cfg).expect("run");
            if res.detected {
                detected += 1;
                if res.final_residual > good_resid {
                    premature += 1;
                }
            }
            updates += res.total_updates;
            resid_sum += res.final_residual;
        }
        table.row(&[
            margin.to_string(),
            seeds.to_string(),
            detected.to_string(),
            premature.to_string(),
            (updates / seeds as u64).to_string(),
            format!("{:.2e}", resid_sum / seeds as f64),
        ]);
        csv.row_strings(&[
            margin.to_string(),
            seeds.to_string(),
            detected.to_string(),
            premature.to_string(),
            (updates / seeds as u64).to_string(),
            format!("{:.6e}", resid_sum / seeds as f64),
        ]);
        // Only the most conservative margin is *asserted*. On shared or
        // virtualised hosts the OS runs threads in bursts of milliseconds;
        // a worker whose inputs are frozen for a whole burst sees zero
        // change, so flush windows shorter than a burst (updates take
        // ~1µs, so even 256 updates ≈ 0.3 ms) can align with everyone's
        // illusion. The window must outlast the scheduler's burst length
        // — that shorter margins occasionally stop early IS the finding.
        if margin >= 16384 {
            assert_eq!(
                premature, 0,
                "margin {margin} should never stop prematurely"
            );
        }
    }
    ctx.log(table.render());
    ctx.log(
        "conservative flush windows eliminate premature stops at negligible overhead — \
         the [22] principle: quiescence must outlast a full exchange of post-quiescence \
         information, and the window must exceed the scheduler's burst length",
    );
    csv.save(&ctx.dir().join("termination.csv"))
        .expect("save csv");
    ctx.finish();
}
