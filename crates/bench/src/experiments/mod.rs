//! One module per experiment in DESIGN.md §4.

pub mod baudet;
pub mod bellman_ford;
pub mod exchange;
pub mod fig1;
pub mod fig2;
pub mod flexible;
pub mod macro_epoch;
pub mod network_flow;
pub mod newton;
pub mod obstacle;
pub mod speedup;
pub mod stepsize_delay;
pub mod termination;
pub mod thm1;
