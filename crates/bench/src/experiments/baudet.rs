//! **E1** — Baudet's `√j` unbounded-delay example (paper §II).
//!
//! Paper claim: with `P1` updating `x₁` in one time unit and `P2`'s
//! `k`-th update taking `k` units, "a simple calculation shows that the
//! delay in updating component `x₂` grows as `√j`", so delays are
//! unbounded (condition (d) fails for every constant `b`) while
//! `lim l₂(j) = +∞` (condition (b) holds). The experiment reconstructs
//! the trace both analytically ([`asynciter_models::baudet`]) and from
//! the discrete-event simulator, fits the delay growth exponent, and
//! runs the condition checkers.

use crate::ExpContext;
use asynciter_models::analysis::{delay_growth_exponent, windowed_max};
use asynciter_models::baudet::{baudet_trace, p1_read_delays};
use asynciter_models::conditions::{check_condition_a, check_condition_b, check_condition_d};
use asynciter_report::ascii::{line_chart, ChartSeries};
use asynciter_report::csv::CsvWriter;
use asynciter_sim::runner::Simulator;
use asynciter_sim::scenario;

/// Runs E1.
pub fn run(seed: u64, quick: bool) {
    let mut ctx = ExpContext::new("E1", seed);
    let steps = if quick { 40_000 } else { 300_000 };

    // Analytic construction.
    let trace = baudet_trace(steps);
    assert!(check_condition_a(&trace).is_ok());
    assert!(check_condition_b(&trace, 8, 2048).is_ok());
    for b in [16u64, 128, 256] {
        assert!(
            check_condition_d(&trace, b).is_err(),
            "condition (d) must fail for b = {b}"
        );
    }
    ctx.log("conditions: (a) holds, (b) holds, (d) fails for b ∈ {16, 128, 256} ✓");

    let delays = p1_read_delays(&trace);
    let window = (delays.len() / 64).max(16);
    let (c, p, r2) = delay_growth_exponent(&delays, window).expect("fit");
    ctx.log(format!(
        "analytic trace: delay envelope fit d(j) ≈ {c:.3} · j^{p:.3}  (r² = {r2:.4}); \
         paper predicts exponent 1/2"
    ));
    assert!((p - 0.5).abs() < 0.1, "exponent {p} not ~ 0.5");

    // Simulator reproduction (independent implementation).
    let op = scenario::two_component_operator();
    let sim = Simulator::run(
        &op,
        &[0.0, 0.0],
        &scenario::baudet(steps.min(100_000)),
        None,
    )
    .expect("simulation");
    let sim_delays: Vec<(u64, u64)> = asynciter_models::analysis::delay_series(&sim.trace, 1)
        .expect("labels stored")
        .into_iter()
        .zip(sim.trace.iter())
        .filter(|(_, (_, s))| s.active.as_slice() == [0])
        .map(|(d, _)| d)
        .collect();
    let (cs, ps, rs2) =
        delay_growth_exponent(&sim_delays, (sim_delays.len() / 64).max(16)).expect("fit");
    ctx.log(format!(
        "simulator trace: d(j) ≈ {cs:.3} · j^{ps:.3}  (r² = {rs2:.4})"
    ));
    assert!((ps - 0.5).abs() < 0.12, "sim exponent {ps} not ~ 0.5");

    // Envelope chart + CSV.
    let env = windowed_max(&delays, window);
    let sqrt_ref: Vec<(f64, f64)> = env.iter().map(|&(j, _)| (j, c * j.sqrt())).collect();
    let chart = line_chart(
        &[
            ChartSeries::new("measured delay envelope", env.clone()),
            ChartSeries::new("c*sqrt(j) reference", sqrt_ref),
        ],
        90,
        20,
        "E1 — delay of x₂'s information at P1's reads grows like √j",
    );
    ctx.log(&chart);
    ctx.save("baudet_envelope.txt", &chart);

    let mut csv = CsvWriter::new(&["j_mid", "delay_envelope"]);
    for (j, d) in &env {
        csv.row(&[*j, *d]);
    }
    csv.save(&ctx.dir().join("delays.csv")).expect("save csv");
    ctx.finish();
}
