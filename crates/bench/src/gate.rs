//! The benchmark gate: a machine-readable scenario matrix with a
//! regression comparator.
//!
//! The paper's claim is that asynchronous iterations converge under
//! unbounded delays, out-of-order messages and flexible communication.
//! This module turns that claim into a standing, machine-checked
//! artefact: it sweeps the cross-product of
//!
//! - **backends** — `replay`, `flexible`, `shared-mem`, `barrier`,
//!   `sim`, `cluster`, `threaded-cluster` (every engine behind the
//!   unified `Session` API),
//! - **problems** — Jacobi/quadratic, lasso via prox-gradient,
//!   Bellman–Ford routing, and the obstacle problem,
//! - **delay models** — no delay, bounded, unbounded heavy-tail,
//!   out-of-order, and flexible partial communication,
//!
//! records one [`GateRecord`] per cell (residual, steps, wall time,
//! simulated time, macro-iterations, per-worker updates) into
//! `BENCH_gate.json`, and — in `--check` mode — compares the fresh
//! matrix against a committed baseline, failing with a non-zero exit
//! when any cell's convergence regresses or its timing degrades beyond
//! a ratio.
//!
//! Not every backend can realise every delay model natively (a barrier
//! cannot reorder messages). Instead of holes in the matrix, each cell
//! carries a `fidelity` tag: `exact` (the model is realised literally),
//! `approx` (an analogous mechanism, e.g. thread load imbalance for
//! bounded delays), or `baseline` (the backend runs its closest
//! admissible variant as the control for that environment). The
//! comparator treats all three alike — every cell is gated.
//!
//! Timing rules are deliberately asymmetric: simulated ticks are
//! deterministic and compared tightly, while wall-clock is only checked
//! for cells that took long enough to measure reliably
//! ([`CheckConfig::min_wall_secs`]) and with a generous ratio, so
//! single-core CI hosts do not flake. Comparator unit tests inject
//! timings instead of running live clocks.

use crate::harness::try_compare_backends;
use asynciter_core::session::{Flexible, Replay, RunReport, Session};
use asynciter_core::stopping::StoppingRule;
use asynciter_core::CoreError;
use asynciter_models::partition::Partition;
use asynciter_models::schedule::{BlockRoundRobin, ChaoticBounded, HeavyTailDelay};
use asynciter_opt::bellman_ford::{BellmanFordOperator, Graph};
use asynciter_opt::lasso::LassoProblem;
use asynciter_opt::linear::JacobiOperator;
use asynciter_opt::logistic::LogisticGradOperator;
use asynciter_opt::network_flow::{NetworkFlowProblem, PriceRelaxation};
use asynciter_opt::obstacle::{ObstacleProblem, ProjectedJacobi};
use asynciter_opt::prox::L1;
use asynciter_opt::proxgrad::{gamma_max, SparseProxGrad};
use asynciter_opt::traits::{Operator, SmoothObjective};
use asynciter_report::json::{GateDoc, GateRecord};
use asynciter_report::TextTable;
use asynciter_runtime::session::{Barrier, Cluster, SharedMem, ThreadedCluster};
use asynciter_runtime::{ApplyPolicy, LinkModel};
use asynciter_sim::compute::{ComputeModel, LatencyModel};
use asynciter_sim::runner::SimConfig;
use asynciter_sim::session::Sim;
use std::collections::BTreeSet;
use std::path::PathBuf;

// ---------------------------------------------------------------------------
// Matrix axes
// ---------------------------------------------------------------------------

/// The problem axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProblemId {
    /// Diagonally dominant tridiagonal linear system, Jacobi operator.
    Jacobi,
    /// Lasso regression via the sparse prox-gradient operator.
    Lasso,
    /// Shortest paths on the Arpanet topology (Bellman–Ford operator).
    BellmanFord,
    /// Membrane obstacle problem (projected Jacobi).
    Obstacle,
    /// ℓ₂-regularised logistic regression (certified gradient operator;
    /// dense data coupling — the heaviest per-step kernel in the matrix).
    Logistic,
    /// Min-cost network flow via the hub-grounded dual price relaxation.
    NetworkFlow,
}

impl ProblemId {
    /// Every problem, sweep order.
    pub const ALL: [ProblemId; 6] = [
        ProblemId::Jacobi,
        ProblemId::Lasso,
        ProblemId::BellmanFord,
        ProblemId::Obstacle,
        ProblemId::Logistic,
        ProblemId::NetworkFlow,
    ];

    /// Stable identifier used in records and baselines.
    pub fn id(self) -> &'static str {
        match self {
            ProblemId::Jacobi => "jacobi",
            ProblemId::Lasso => "lasso",
            ProblemId::BellmanFord => "bellman-ford",
            ProblemId::Obstacle => "obstacle",
            ProblemId::Logistic => "logistic",
            ProblemId::NetworkFlow => "network-flow",
        }
    }

    /// Residual target for this problem's cells on the backends that
    /// support a stopping rule (`replay` and `barrier` here; shared-mem
    /// and cluster cells already run their own targets). Those cells
    /// record steps-to-converge instead of burning the cap — the
    /// single-core-host policy that keeps the quick matrix inside its
    /// wall budget despite 60 extra cells. `flexible` and `sim` have no
    /// stopping support and run their (deterministic) fixed budgets.
    fn residual_target(self) -> Option<f64> {
        match self {
            ProblemId::Logistic | ProblemId::NetworkFlow => Some(1e-9),
            _ => None,
        }
    }
}

/// The backend axis (the seven `Session` engines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendId {
    /// Deterministic Definition-1 replay.
    Replay,
    /// Definition-3 flexible communication.
    Flexible,
    /// Free-running shared-memory threads.
    SharedMem,
    /// Barrier-synchronous threads.
    Barrier,
    /// Discrete-event simulator.
    Sim,
    /// Deterministic sharded message-passing cluster.
    Cluster,
    /// Genuinely concurrent message-passing cluster (worker threads
    /// over the transport seam).
    Threaded,
}

impl BackendId {
    /// Every backend, sweep order.
    pub const ALL: [BackendId; 7] = [
        BackendId::Replay,
        BackendId::Flexible,
        BackendId::SharedMem,
        BackendId::Barrier,
        BackendId::Sim,
        BackendId::Cluster,
        BackendId::Threaded,
    ];

    /// Stable identifier used in records and baselines.
    pub fn id(self) -> &'static str {
        match self {
            BackendId::Replay => "replay",
            BackendId::Flexible => "flexible",
            BackendId::SharedMem => "shared-mem",
            BackendId::Barrier => "barrier",
            BackendId::Sim => "sim",
            BackendId::Cluster => "cluster",
            BackendId::Threaded => "threaded-cluster",
        }
    }
}

/// The delay-model axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelayId {
    /// Synchronous: every read is fresh.
    NoDelay,
    /// Delays bounded by a constant (condition (d)).
    Bounded,
    /// Pareto-tailed delays — unbounded, infinite variance.
    UnboundedHeavyTail,
    /// Non-monotone labels: later updates may read older data.
    OutOfOrder,
    /// Flexible communication: mid-phase partial updates are published.
    FlexiblePartial,
}

impl DelayId {
    /// Every delay model, sweep order.
    pub const ALL: [DelayId; 5] = [
        DelayId::NoDelay,
        DelayId::Bounded,
        DelayId::UnboundedHeavyTail,
        DelayId::OutOfOrder,
        DelayId::FlexiblePartial,
    ];

    /// Stable identifier used in records and baselines.
    pub fn id(self) -> &'static str {
        match self {
            DelayId::NoDelay => "no-delay",
            DelayId::Bounded => "bounded",
            DelayId::UnboundedHeavyTail => "unbounded-heavy-tail",
            DelayId::OutOfOrder => "out-of-order",
            DelayId::FlexiblePartial => "flexible-partial",
        }
    }
}

/// Run size: `Quick` is the CI gate (small instances, seconds), `Full`
/// the nightly-scale sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateMode {
    /// CI-sized instances.
    Quick,
    /// Larger instances and budgets.
    Full,
}

impl GateMode {
    /// Stable identifier stamped into the document.
    pub fn id(self) -> &'static str {
        match self {
            GateMode::Quick => "quick",
            GateMode::Full => "full",
        }
    }
}

// ---------------------------------------------------------------------------
// Problem instances and budgets
// ---------------------------------------------------------------------------

/// A constructed problem instance: the operator and its canonical start.
struct GateProblem {
    op: Box<dyn Operator>,
    x0: Vec<f64>,
}

fn build_problem(pid: ProblemId, mode: GateMode, seed: u64) -> GateProblem {
    let full = mode == GateMode::Full;
    match pid {
        ProblemId::Jacobi => {
            let n = if full { 64 } else { 16 };
            let op = JacobiOperator::new(
                asynciter_numerics::sparse::tridiagonal(n, 4.0, -1.0),
                vec![1.0; n],
            )
            .expect("static Jacobi instance is valid");
            GateProblem {
                x0: vec![0.0; op.dim()],
                op: Box::new(op),
            }
        }
        ProblemId::Lasso => {
            let (n, m, k) = if full { (48, 480, 8) } else { (12, 72, 3) };
            let problem =
                LassoProblem::random(n, m, k, 0.05, 0.01, seed).expect("static lasso instance");
            let q = problem.quadratic.clone();
            let gamma = 0.9 * gamma_max(q.strong_convexity(), q.lipschitz());
            let op = SparseProxGrad::new(q, L1::new(problem.lambda), gamma)
                .expect("gamma within Theorem-1 range");
            GateProblem {
                x0: vec![0.0; n],
                op: Box::new(op),
            }
        }
        ProblemId::BellmanFord => {
            let graph = if full {
                Graph::random_geometric(64, 0.25, seed).expect("static geometric graph")
            } else {
                Graph::arpanet()
            };
            let op = BellmanFordOperator::new(graph, 0).expect("destination 0 exists");
            GateProblem {
                x0: op.initial_estimate(),
                op: Box::new(op),
            }
        }
        ProblemId::Obstacle => {
            let g = if full { 16 } else { 8 };
            let problem = ObstacleProblem::bump(g, g, 0.6).expect("static obstacle instance");
            let op = ProjectedJacobi::new(problem);
            GateProblem {
                x0: op.upper_start(),
                op: Box::new(op),
            }
        }
        ProblemId::Logistic => {
            let (n, m) = if full { (24, 240) } else { (8, 48) };
            // Certifiably max-norm contractive under every delay model
            // in the matrix (ridge above the data-coupling bound).
            let op = LogisticGradOperator::certified_random(n, m, 2.0, seed)
                .expect("certified logistic instance");
            GateProblem {
                x0: vec![0.0; n],
                op: Box::new(op),
            }
        }
        ProblemId::NetworkFlow => {
            let ring = if full { 48 } else { 12 };
            let problem = NetworkFlowProblem::wheel(ring, seed).expect("static wheel instance");
            let op = PriceRelaxation::new(problem, 0).expect("hub-grounded relaxation");
            GateProblem {
                x0: vec![0.0; op.dim()],
                op: Box::new(op),
            }
        }
    }
}

/// Step budget per cell, in the backend's step unit (iterations, block
/// updates, sweeps or phases).
///
/// Deterministic backends get fixed budgets that converge each quick
/// cell well below the comparator's residual floor (the
/// slowly-contracting obstacle problem proportionally more). Two
/// backends are special-cased for single-core CI hosts:
///
/// - `shared-mem` workers are free-running, so under coarse OS
///   interleaving one worker can burn any fixed global budget before
///   its peer runs; those cells get a huge budget plus a residual
///   stopping rule (the same pattern the runtime's own tests use).
/// - `barrier` sweeps cost one spin-barrier crossing per worker, which
///   on a single core means a scheduling quantum each; budgets are kept
///   small since sweeps converge geometrically anyway.
fn step_budget(pid: ProblemId, bid: BackendId, mode: GateMode) -> u64 {
    let quick = match (pid, bid) {
        (_, BackendId::SharedMem) => 2_000_000,
        // The cluster event loop is sequential and deterministic, so a
        // fixed budget would be safe — but like shared-mem it pairs a
        // large budget with a residual target so every cell records
        // "steps to converge" rather than "steps spent".
        (_, BackendId::Cluster) => 400_000,
        // Threaded workers are free-running like shared-mem: under
        // coarse OS interleaving any fixed budget can be burned by one
        // worker, so the cell is residual-driven with a huge backstop.
        (_, BackendId::Threaded) => 4_000_000,
        (ProblemId::Obstacle, BackendId::Replay | BackendId::Flexible) => 12_000,
        (ProblemId::Obstacle, BackendId::Barrier) => 150,
        (ProblemId::Obstacle, BackendId::Sim) => 2_000,
        // The promoted problems pair these caps with residual targets on
        // replay/barrier (see `ProblemId::residual_target`): ceilings
        // there, exact (deterministic) step counts on flexible/sim.
        (ProblemId::Logistic, BackendId::Replay | BackendId::Flexible) => 6_000,
        (ProblemId::Logistic, BackendId::Barrier) => 200,
        (ProblemId::Logistic, BackendId::Sim) => 800,
        (ProblemId::NetworkFlow, BackendId::Replay | BackendId::Flexible) => 10_000,
        (ProblemId::NetworkFlow, BackendId::Barrier) => 300,
        (ProblemId::NetworkFlow, BackendId::Sim) => 1_200,
        (_, BackendId::Replay | BackendId::Flexible) => 2_500,
        (_, BackendId::Barrier) => 80,
        (_, BackendId::Sim) => 600,
    };
    match mode {
        GateMode::Quick => quick,
        GateMode::Full => match bid {
            BackendId::SharedMem | BackendId::Cluster | BackendId::Threaded => quick,
            _ => quick * 4,
        },
    }
}

// ---------------------------------------------------------------------------
// Cell execution
// ---------------------------------------------------------------------------

/// Worker/processor count for thread and simulator cells.
fn workers(did: DelayId) -> usize {
    match did {
        // Extra interleaving makes free-running reordering more likely.
        DelayId::OutOfOrder => 3,
        _ => 2,
    }
}

/// `(fidelity, note)` for a cell — how faithfully this backend realises
/// this delay model (see the module docs).
fn fidelity_of(bid: BackendId, did: DelayId) -> (&'static str, &'static str) {
    use BackendId::*;
    use DelayId::*;
    match (bid, did) {
        (Replay, FlexiblePartial) => (
            "baseline",
            "replay cannot publish partials; runs the bounded-delay schedule as control",
        ),
        (SharedMem, NoDelay) => ("exact", "single worker: every read is fresh"),
        (SharedMem, Bounded) => ("approx", "bounded staleness via mild worker load imbalance"),
        (SharedMem, UnboundedHeavyTail) => {
            ("approx", "severe straggler approximates heavy-tail delays")
        }
        (SharedMem, OutOfOrder) => ("approx", "free-running races reorder block publishes"),
        (Barrier, NoDelay | Bounded) => (
            "exact",
            "barrier sweeps are synchronous; imbalance only stretches wall time",
        ),
        (Barrier, UnboundedHeavyTail) => (
            "baseline",
            "barriers flatten unbounded delays; synchronous control under a severe straggler",
        ),
        (Barrier, OutOfOrder) => (
            "baseline",
            "barriers forbid reordering; plain synchronous control",
        ),
        (Barrier, FlexiblePartial) => (
            "baseline",
            "barrier runner has no partial publishing; plain synchronous control",
        ),
        (Cluster, NoDelay) => ("exact", "single worker: every read is fresh"),
        (Cluster, Bounded) => (
            "exact",
            "fixed unit-latency links: staleness bounded by the rotation",
        ),
        (Cluster, UnboundedHeavyTail) => {
            ("exact", "Pareto link latency: genuinely unbounded delays")
        }
        (Cluster, OutOfOrder) => (
            "exact",
            "held messages delivered behind newer ones under AsReceived",
        ),
        (Cluster, FlexiblePartial) => ("exact", "partial block messages folded in as they arrive"),
        (Threaded, NoDelay) => ("exact", "single worker: every read is fresh"),
        (Threaded, Bounded) => (
            "approx",
            "real-thread scheduling: staleness bounded in practice, not certified",
        ),
        (Threaded, UnboundedHeavyTail) => (
            "approx",
            "aggressively held messages model unbounded delays (not Pareto-distributed)",
        ),
        (Threaded, OutOfOrder) => (
            "exact",
            "held messages delivered behind newer ones under AsReceived",
        ),
        (Threaded, FlexiblePartial) => ("exact", "partial block messages folded in as they arrive"),
        _ => ("exact", ""),
    }
}

/// Spin schedules for thread cells: `(uniform, mild imbalance, severe
/// straggler)` per delay model.
fn thread_spin(did: DelayId, threads: usize) -> Vec<u64> {
    match did {
        DelayId::Bounded => (0..threads as u64).map(|w| w * 160).collect(),
        DelayId::UnboundedHeavyTail => (0..threads as u64).map(|w| w * 1_200).collect(),
        _ => Vec::new(),
    }
}

fn sim_partition(n: usize, procs: usize) -> Result<Partition, CoreError> {
    Partition::blocks(n, procs).map_err(|e| CoreError::Backend {
        backend: "sim",
        message: format!("cannot partition {n} components over {procs} processors: {e}"),
    })
}

/// Simulator realisation of each delay model.
fn sim_config(n: usize, did: DelayId, steps: u64, seed: u64) -> Result<SimConfig, CoreError> {
    let procs = workers(did);
    let mut cfg = SimConfig::uniform(sim_partition(n, procs)?, steps);
    cfg.seed = seed;
    match did {
        DelayId::NoDelay => {}
        DelayId::Bounded => {
            cfg.compute = vec![ComputeModel::Uniform { lo: 1, hi: 4 }; procs];
            cfg.latency = LatencyModel::Jitter { lo: 1, hi: 3 };
        }
        DelayId::UnboundedHeavyTail => {
            cfg.compute = vec![
                ComputeModel::HeavyTail {
                    scale: 1,
                    alpha: 1.3,
                };
                procs
            ];
            cfg.latency = LatencyModel::HeavyTail {
                scale: 1,
                alpha: 1.3,
            };
        }
        DelayId::OutOfOrder => {
            cfg.compute = vec![ComputeModel::Uniform { lo: 1, hi: 3 }; procs];
            // Jitter wider than the send period reorders messages.
            cfg.latency = LatencyModel::Jitter { lo: 1, hi: 12 };
        }
        DelayId::FlexiblePartial => {
            cfg.compute = vec![ComputeModel::Uniform { lo: 1, hi: 4 }; procs];
            cfg.latency = LatencyModel::Jitter { lo: 1, hi: 3 };
            cfg.inner_steps = 4;
            cfg.partial_sends = 2;
        }
    }
    Ok(cfg)
}

/// Schedule parameters shared by the schedule-driven backends.
fn active_range(n: usize) -> (usize, usize) {
    (1, (n / 4).max(2).min(n))
}

/// Configures and runs one cell's session.
fn run_session(
    s: Session<'_>,
    n: usize,
    pid: ProblemId,
    bid: BackendId,
    did: DelayId,
    steps: u64,
    seed: u64,
) -> asynciter_core::Result<RunReport> {
    let (k_min, k_max) = active_range(n);
    let threads = workers(did);
    match bid {
        BackendId::Replay => {
            let mut s = match did {
                DelayId::NoDelay => s, // default synchronous Jacobi schedule
                DelayId::Bounded | DelayId::FlexiblePartial => {
                    s.schedule(ChaoticBounded::new(n, k_min, k_max, 8, true, seed))
                }
                DelayId::OutOfOrder => {
                    s.schedule(ChaoticBounded::new(n, k_min, k_max, 8, false, seed))
                }
                DelayId::UnboundedHeavyTail => {
                    s.schedule(HeavyTailDelay::new(n, k_min, k_max, 1.5, seed))
                }
            };
            if let Some(eps) = pid.residual_target() {
                s = s.stopping(StoppingRule::Residual {
                    eps,
                    check_every: 32,
                });
            }
            s.backend(Replay).run()
        }
        BackendId::Flexible => {
            let (s, backend) = match did {
                DelayId::FlexiblePartial => {
                    let partition =
                        Partition::blocks(n, threads).map_err(|e| CoreError::Backend {
                            backend: "flexible",
                            message: format!("cannot partition {n} over {threads} blocks: {e}"),
                        })?;
                    (
                        s.schedule(BlockRoundRobin::new(partition, 4)),
                        Flexible {
                            m: 4,
                            partial: true,
                            ..Flexible::default()
                        },
                    )
                }
                other => {
                    let s = match other {
                        DelayId::NoDelay => s, // default synchronous schedule
                        DelayId::Bounded => {
                            s.schedule(ChaoticBounded::new(n, k_min, k_max, 8, true, seed))
                        }
                        DelayId::OutOfOrder => {
                            s.schedule(ChaoticBounded::new(n, k_min, k_max, 8, false, seed))
                        }
                        DelayId::UnboundedHeavyTail => {
                            s.schedule(HeavyTailDelay::new(n, k_min, k_max, 1.5, seed))
                        }
                        DelayId::FlexiblePartial => unreachable!(),
                    };
                    (
                        s,
                        Flexible {
                            m: 2,
                            partial: false,
                            ..Flexible::default()
                        },
                    )
                }
            };
            s.backend(backend).run()
        }
        BackendId::SharedMem => {
            let threads = if did == DelayId::NoDelay { 1 } else { threads };
            let (inner_steps, publish_period) = if did == DelayId::FlexiblePartial {
                (4, 2)
            } else {
                (1, 1)
            };
            // Free-running workers need a convergence target, not a step
            // count: see `step_budget`.
            s.stopping(StoppingRule::Residual {
                eps: 1e-9,
                check_every: 64,
            })
            .backend(SharedMem {
                threads,
                inner_steps,
                publish_period,
                spin: thread_spin(did, threads),
                ..SharedMem::default()
            })
            .run()
        }
        BackendId::Barrier => {
            let mut s = s;
            if let Some(eps) = pid.residual_target() {
                // Maps onto the runner's sweep-change target: the cell
                // records sweeps-to-converge instead of burning the cap.
                s = s.stopping(StoppingRule::Residual {
                    eps,
                    check_every: 1,
                });
            }
            s.backend(Barrier {
                // Always two workers: extra threads only multiply
                // spin-barrier crossings, which serialise on one core.
                threads: 2,
                spin: thread_spin(did, 2),
                ..Barrier::default()
            })
            .run()
        }
        BackendId::Sim => {
            let cfg = sim_config(n, did, steps, seed)?;
            s.backend(Sim(cfg)).run()
        }
        BackendId::Cluster => {
            let workers = if did == DelayId::NoDelay { 1 } else { threads };
            let backend = match did {
                DelayId::NoDelay | DelayId::Bounded => Cluster {
                    workers,
                    ..Cluster::default()
                },
                DelayId::UnboundedHeavyTail => Cluster {
                    workers,
                    link: LinkModel::HeavyTail {
                        scale: 1,
                        alpha: 1.3,
                    },
                    ..Cluster::default()
                },
                DelayId::OutOfOrder => Cluster {
                    workers,
                    hold_prob: 0.3,
                    drop_prob: 0.1,
                    dup_prob: 0.05,
                    link: LinkModel::Jitter { lo: 1, hi: 6 },
                    apply_policy: ApplyPolicy::AsReceived,
                    ..Cluster::default()
                },
                DelayId::FlexiblePartial => Cluster {
                    workers,
                    partial_prob: 0.5,
                    apply_policy: ApplyPolicy::KeepFreshest,
                    link: LinkModel::Jitter { lo: 1, hi: 3 },
                    ..Cluster::default()
                },
            };
            // Sequential and deterministic, but still a residual target:
            // cells record steps-to-converge (single-core safe by
            // construction).
            s.stopping(StoppingRule::Residual {
                eps: 1e-9,
                check_every: 16,
            })
            .backend(backend)
            .run()
        }
        BackendId::Threaded => {
            let workers = if did == DelayId::NoDelay { 1 } else { threads };
            let backend = match did {
                // Real-thread scheduling is the delay model itself for
                // the synchronous and bounded cells.
                DelayId::NoDelay | DelayId::Bounded => ThreadedCluster {
                    workers,
                    ..ThreadedCluster::default()
                },
                DelayId::UnboundedHeavyTail => ThreadedCluster {
                    workers,
                    hold_prob: 0.4,
                    hold_extra: 24,
                    ..ThreadedCluster::default()
                },
                DelayId::OutOfOrder => ThreadedCluster {
                    workers,
                    hold_prob: 0.3,
                    hold_extra: 8,
                    drop_prob: 0.1,
                    dup_prob: 0.05,
                    apply_policy: ApplyPolicy::AsReceived,
                    ..ThreadedCluster::default()
                },
                DelayId::FlexiblePartial => ThreadedCluster {
                    workers,
                    partial_prob: 0.5,
                    apply_policy: ApplyPolicy::KeepFreshest,
                    ..ThreadedCluster::default()
                },
            };
            // Racy by nature: free-running workers need a convergence
            // target, not a step count (see `step_budget`).
            s.stopping(StoppingRule::Residual {
                eps: 1e-9,
                check_every: 16,
            })
            .backend(backend)
            .run()
        }
    }
}

/// Runs one cell through [`try_compare_backends`], turning failures into
/// recorded `"failed"` cells instead of aborting the matrix.
fn run_cell(
    gp: &GateProblem,
    pid: ProblemId,
    bid: BackendId,
    did: DelayId,
    mode: GateMode,
    seed: u64,
) -> GateRecord {
    let (fidelity, note) = fidelity_of(bid, did);
    let steps = step_budget(pid, bid, mode);
    let n = gp.op.dim();
    let x0 = gp.x0.clone();
    let result = try_compare_backends(
        gp.op.as_ref(),
        vec![Box::new(move |s: Session<'_>| {
            run_session(
                s.x0(x0).steps(steps).seed(seed),
                n,
                pid,
                bid,
                did,
                steps,
                seed,
            )
        })],
    );
    let mut record = GateRecord {
        problem: pid.id().to_string(),
        backend: bid.id().to_string(),
        delay: did.id().to_string(),
        fidelity: fidelity.to_string(),
        status: "ok".to_string(),
        note: note.to_string(),
        seed,
        steps: 0,
        wall_secs: 0.0,
        sim_time: None,
        final_residual: f64::NAN,
        macro_iterations: 0,
        per_worker_updates: Vec::new(),
    };
    match result {
        Ok(mut reports) => {
            let report = reports.pop().expect("one run per cell");
            record.steps = report.steps;
            record.wall_secs = report.wall_secs();
            record.sim_time = report.sim_time;
            record.final_residual = report.final_residual;
            record.macro_iterations = report.macro_iterations;
            record.per_worker_updates = report.per_worker_updates;
        }
        Err(e) => {
            record.status = "failed".to_string();
            record.note = e.to_string();
        }
    }
    record
}

/// Runs the whole scenario matrix and returns the document.
pub fn run_matrix(mode: GateMode, seed: u64) -> GateDoc {
    let mut records =
        Vec::with_capacity(ProblemId::ALL.len() * BackendId::ALL.len() * DelayId::ALL.len());
    for &pid in &ProblemId::ALL {
        let gp = build_problem(pid, mode, seed);
        for &bid in &BackendId::ALL {
            for &did in &DelayId::ALL {
                records.push(run_cell(&gp, pid, bid, did, mode, seed));
            }
        }
    }
    GateDoc::new(mode.id(), records)
}

/// Distinct axis values among the `ok` records of a document — the
/// coverage the acceptance gate asserts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coverage {
    /// Backends with at least one ok cell.
    pub backends: BTreeSet<String>,
    /// Problems with at least one ok cell.
    pub problems: BTreeSet<String>,
    /// Delay models with at least one ok cell.
    pub delays: BTreeSet<String>,
}

/// Computes [`Coverage`] over the document's ok records.
pub fn coverage(doc: &GateDoc) -> Coverage {
    let mut c = Coverage {
        backends: BTreeSet::new(),
        problems: BTreeSet::new(),
        delays: BTreeSet::new(),
    };
    for r in doc.records.iter().filter(|r| r.is_ok()) {
        c.backends.insert(r.backend.clone());
        c.problems.insert(r.problem.clone());
        c.delays.insert(r.delay.clone());
    }
    c
}

// ---------------------------------------------------------------------------
// The comparator
// ---------------------------------------------------------------------------

/// Regression thresholds. Defaults are tuned so deterministic metrics
/// (residuals, simulated ticks) are held tightly while wall-clock — the
/// only host-dependent metric — is gated loosely and only for cells
/// long enough to time reliably.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// A current residual at or below this passes outright (absorbs
    /// nondeterministic noise near machine precision in converged cells).
    pub residual_floor: f64,
    /// Otherwise the current residual must stay within `ratio ×`
    /// baseline.
    pub residual_ratio: f64,
    /// Wall-time regression ratio.
    pub wall_ratio: f64,
    /// Wall-time checks only apply when the *baseline* cell took at
    /// least this long (sub-millisecond cells are pure noise).
    pub min_wall_secs: f64,
    /// Simulated-tick regression ratio (deterministic, so tight).
    pub sim_time_ratio: f64,
}

impl Default for CheckConfig {
    fn default() -> Self {
        Self {
            residual_floor: 1e-5,
            residual_ratio: 25.0,
            wall_ratio: 8.0,
            min_wall_secs: 0.05,
            sim_time_ratio: 1.25,
        }
    }
}

/// Per-cell comparison verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Within thresholds.
    Pass,
    /// Cell exists only in the current run (informational).
    NewCell,
    /// Baseline cell did not run ok; nothing to gate against.
    BaselineNotOk,
    /// Baseline cell is missing from the current run.
    MissingCell,
    /// The current run failed where the baseline succeeded.
    RunFailed,
    /// Convergence regressed beyond the residual thresholds.
    ResidualRegression,
    /// Wall-clock time regressed beyond the ratio.
    WallRegression,
    /// Simulated ticks regressed beyond the ratio.
    SimTimeRegression,
}

impl Verdict {
    /// Whether this verdict fails the gate.
    pub fn is_failure(&self) -> bool {
        matches!(
            self,
            Verdict::MissingCell
                | Verdict::RunFailed
                | Verdict::ResidualRegression
                | Verdict::WallRegression
                | Verdict::SimTimeRegression
        )
    }

    /// Short label for the diff table.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::NewCell => "new",
            Verdict::BaselineNotOk => "no-base",
            Verdict::MissingCell => "MISSING",
            Verdict::RunFailed => "FAILED",
            Verdict::ResidualRegression => "RESIDUAL",
            Verdict::WallRegression => "WALL",
            Verdict::SimTimeRegression => "SIM-TIME",
        }
    }
}

/// One row of the comparison: the cell, both measurements, the verdict.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// `problem|backend|delay`.
    pub key: String,
    /// The verdict.
    pub verdict: Verdict,
    /// Baseline residual (`NAN` when absent).
    pub base_residual: f64,
    /// Current residual (`NAN` when absent).
    pub cur_residual: f64,
    /// Baseline time metric: simulated ticks when present, else wall
    /// seconds.
    pub base_time: f64,
    /// Current time metric, same unit as `base_time`.
    pub cur_time: f64,
    /// Extra context for failures.
    pub detail: String,
}

/// The full comparison result.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// One outcome per compared cell (baseline order, then new cells).
    pub cells: Vec<CellOutcome>,
}

impl CheckReport {
    /// True when no cell failed.
    pub fn passed(&self) -> bool {
        self.cells.iter().all(|c| !c.verdict.is_failure())
    }

    /// Number of failing cells.
    pub fn failures(&self) -> usize {
        self.cells.iter().filter(|c| c.verdict.is_failure()).count()
    }

    /// Renders the ASCII diff table (failures first).
    pub fn render_table(&self) -> String {
        let mut table = TextTable::new(&[
            "cell",
            "verdict",
            "resid(base)",
            "resid(cur)",
            "time(base)",
            "time(cur)",
        ]);
        let mut rows: Vec<&CellOutcome> = self.cells.iter().collect();
        rows.sort_by_key(|c| !c.verdict.is_failure());
        for c in rows {
            table.row(&[
                c.key.clone(),
                c.verdict.label().to_string(),
                fmt_metric(c.base_residual),
                fmt_metric(c.cur_residual),
                fmt_metric(c.base_time),
                fmt_metric(c.cur_time),
            ]);
        }
        table.render()
    }
}

fn fmt_metric(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else {
        format!("{v:.3e}")
    }
}

fn time_metric(r: &GateRecord) -> f64 {
    match r.sim_time {
        Some(t) => t as f64,
        None => r.wall_secs,
    }
}

fn compare_cell(base: &GateRecord, cur: &GateRecord, cfg: &CheckConfig) -> (Verdict, String) {
    if !base.is_ok() {
        return (Verdict::BaselineNotOk, base.note.clone());
    }
    if !cur.is_ok() {
        return (Verdict::RunFailed, cur.note.clone());
    }
    // Convergence: a floor for converged cells, then a ratio. NaN fails
    // both comparisons, as it must.
    let resid_ok = cur.final_residual <= cfg.residual_floor
        || cur.final_residual <= base.final_residual * cfg.residual_ratio + f64::MIN_POSITIVE;
    if !resid_ok {
        return (
            Verdict::ResidualRegression,
            format!(
                "residual {:.3e} exceeds floor {:.1e} and {}x baseline {:.3e}",
                cur.final_residual, cfg.residual_floor, cfg.residual_ratio, base.final_residual
            ),
        );
    }
    // Simulated ticks: deterministic, gated tightly. A cell that loses
    // the metric the baseline had must not silently skip the check.
    match (base.sim_time, cur.sim_time) {
        (Some(bt), Some(ct)) => {
            if bt > 0 && ct as f64 > bt as f64 * cfg.sim_time_ratio {
                return (
                    Verdict::SimTimeRegression,
                    format!(
                        "simulated time {ct} exceeds {}x baseline {bt}",
                        cfg.sim_time_ratio
                    ),
                );
            }
        }
        (Some(bt), None) => {
            return (
                Verdict::SimTimeRegression,
                format!("baseline recorded simulated time {bt} but the current cell has none"),
            );
        }
        (None, _) => {}
    }
    // Wall clock: only for cells the baseline could time reliably.
    if base.wall_secs >= cfg.min_wall_secs && cur.wall_secs > base.wall_secs * cfg.wall_ratio {
        return (
            Verdict::WallRegression,
            format!(
                "wall {:.3}s exceeds {}x baseline {:.3}s",
                cur.wall_secs, cfg.wall_ratio, base.wall_secs
            ),
        );
    }
    (Verdict::Pass, String::new())
}

/// Compares a fresh matrix against a baseline, cell by cell.
pub fn check_matrix(baseline: &GateDoc, current: &GateDoc, cfg: &CheckConfig) -> CheckReport {
    let mut cells = Vec::with_capacity(baseline.records.len());
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for base in &baseline.records {
        let key = base.key();
        seen.insert(key.clone());
        let cur = current.records.iter().find(|r| r.key() == key);
        let (verdict, detail, cur_resid, cur_time) = match cur {
            None => (
                if base.is_ok() {
                    Verdict::MissingCell
                } else {
                    Verdict::BaselineNotOk
                },
                "cell missing from current run".to_string(),
                f64::NAN,
                f64::NAN,
            ),
            Some(cur) => {
                let (v, d) = compare_cell(base, cur, cfg);
                (v, d, cur.final_residual, time_metric(cur))
            }
        };
        cells.push(CellOutcome {
            key,
            verdict,
            base_residual: base.final_residual,
            cur_residual: cur_resid,
            base_time: time_metric(base),
            cur_time,
            detail,
        });
    }
    for cur in current.records.iter().filter(|r| !seen.contains(&r.key())) {
        cells.push(CellOutcome {
            key: cur.key(),
            verdict: Verdict::NewCell,
            base_residual: f64::NAN,
            cur_residual: cur.final_residual,
            base_time: f64::NAN,
            cur_time: time_metric(cur),
            detail: "cell not present in baseline".to_string(),
        });
    }
    CheckReport { cells }
}

// ---------------------------------------------------------------------------
// CLI entry point (thin `bin/gate.rs` wraps this)
// ---------------------------------------------------------------------------

const USAGE: &str = "usage: gate [--quick | --full] [--seed N] [--out PATH] \
[--check BASELINE] [--residual-floor X] [--residual-ratio X] [--wall-ratio X] \
[--min-wall-secs X] [--sim-time-ratio X]

Runs the backend x problem x delay-model scenario matrix, writes the
machine-readable BENCH_gate.json (default --out), and with --check
compares against a baseline, exiting 1 on any regression.";

struct GateArgs {
    mode: GateMode,
    seed: u64,
    out: PathBuf,
    check: Option<PathBuf>,
    cfg: CheckConfig,
}

fn parse_gate_args(args: &[String]) -> Result<GateArgs, String> {
    let mut parsed = GateArgs {
        mode: GateMode::Quick,
        seed: 2022,
        out: PathBuf::from("BENCH_gate.json"),
        check: None,
        cfg: CheckConfig::default(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match a.as_str() {
            "--quick" => parsed.mode = GateMode::Quick,
            "--full" => parsed.mode = GateMode::Full,
            "--seed" => {
                parsed.seed = val("--seed")?
                    .parse()
                    .map_err(|_| "--seed requires an integer".to_string())?;
            }
            "--out" => parsed.out = PathBuf::from(val("--out")?),
            "--check" => parsed.check = Some(PathBuf::from(val("--check")?)),
            "--residual-floor" => parsed.cfg.residual_floor = parse_f64(val("--residual-floor")?)?,
            "--residual-ratio" => parsed.cfg.residual_ratio = parse_f64(val("--residual-ratio")?)?,
            "--wall-ratio" => parsed.cfg.wall_ratio = parse_f64(val("--wall-ratio")?)?,
            "--min-wall-secs" => parsed.cfg.min_wall_secs = parse_f64(val("--min-wall-secs")?)?,
            "--sim-time-ratio" => parsed.cfg.sim_time_ratio = parse_f64(val("--sim-time-ratio")?)?,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(parsed)
}

fn parse_f64(text: &str) -> Result<f64, String> {
    text.parse()
        .map_err(|_| format!("`{text}` is not a number"))
}

/// The gate CLI: runs the matrix, writes the artefact, optionally checks
/// a baseline. Returns the process exit code: 0 on success, 1 on any
/// regression or failed cell, 2 on usage/IO/parse errors.
pub fn gate_main(args: &[String]) -> i32 {
    let parsed = match parse_gate_args(args) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("gate: {msg}\n\n{USAGE}");
            return 2;
        }
    };
    println!(
        "gate: running {} scenario matrix (seed {})",
        parsed.mode.id(),
        parsed.seed
    );
    let doc = run_matrix(parsed.mode, parsed.seed);
    if let Some(parent) = parsed.out.parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("gate: cannot create {}: {e}", parent.display());
                return 2;
            }
        }
    }
    if let Err(e) = std::fs::write(&parsed.out, doc.render()) {
        eprintln!("gate: cannot write {}: {e}", parsed.out.display());
        return 2;
    }
    let cov = coverage(&doc);
    let failed: Vec<&GateRecord> = doc.records.iter().filter(|r| !r.is_ok()).collect();
    println!(
        "gate: {} cells ({} ok, {} failed) -> {} | coverage: {} backends x {} problems x {} delay models",
        doc.records.len(),
        doc.records.len() - failed.len(),
        failed.len(),
        parsed.out.display(),
        cov.backends.len(),
        cov.problems.len(),
        cov.delays.len(),
    );
    for r in &failed {
        eprintln!("gate: FAILED cell {}: {}", r.key(), r.note);
    }
    let mut exit = if failed.is_empty() { 0 } else { 1 };
    if let Some(path) = &parsed.check {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("gate: cannot read baseline {}: {e}", path.display());
                return 2;
            }
        };
        let baseline = match GateDoc::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("gate: corrupt baseline {}: {e}", path.display());
                return 2;
            }
        };
        let report = check_matrix(&baseline, &doc, &parsed.cfg);
        println!("{}", report.render_table());
        if report.passed() {
            println!(
                "gate: PASS — {} cells within thresholds of {}",
                report.cells.len(),
                path.display()
            );
        } else {
            for c in report.cells.iter().filter(|c| c.verdict.is_failure()) {
                eprintln!(
                    "gate: REGRESSION {} [{}]: {}",
                    c.key,
                    c.verdict.label(),
                    c.detail
                );
            }
            eprintln!(
                "gate: FAIL — {} of {} cells regressed vs {}",
                report.failures(),
                report.cells.len(),
                path.display()
            );
            exit = 1;
        }
    }
    exit
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_record(key: (&str, &str, &str)) -> GateRecord {
        GateRecord {
            problem: key.0.into(),
            backend: key.1.into(),
            delay: key.2.into(),
            fidelity: "exact".into(),
            status: "ok".into(),
            note: String::new(),
            seed: 1,
            steps: 100,
            wall_secs: 0.5,
            sim_time: None,
            final_residual: 1e-3,
            macro_iterations: 10,
            per_worker_updates: vec![50, 50],
        }
    }

    fn doc(records: Vec<GateRecord>) -> GateDoc {
        GateDoc::new("quick", records)
    }

    #[test]
    fn identical_docs_pass() {
        let d = doc(vec![ok_record(("p", "b", "d"))]);
        let report = check_matrix(&d, &d.clone(), &CheckConfig::default());
        assert!(report.passed());
        assert_eq!(report.cells[0].verdict, Verdict::Pass);
    }

    #[test]
    fn residual_floor_absorbs_noise() {
        // Baseline at machine precision, current 100x worse but still
        // far below the floor: pass (thread nondeterminism tolerance).
        let base = ok_record(("p", "b", "d"));
        let mut cur = base.clone();
        let mut base = base;
        base.final_residual = 1e-14;
        cur.final_residual = 1e-12;
        let report = check_matrix(&doc(vec![base]), &doc(vec![cur]), &CheckConfig::default());
        assert!(report.passed());
    }

    #[test]
    fn residual_regression_fails() {
        let mut base = ok_record(("p", "b", "d"));
        base.final_residual = 1e-3; // above the floor already
        let mut cur = base.clone();
        cur.final_residual = 1.0; // 1000x worse
        let report = check_matrix(&doc(vec![base]), &doc(vec![cur]), &CheckConfig::default());
        assert!(!report.passed());
        assert_eq!(report.cells[0].verdict, Verdict::ResidualRegression);
    }

    #[test]
    fn nan_residual_fails() {
        let mut base = ok_record(("p", "b", "d"));
        base.final_residual = 1e-3;
        let mut cur = base.clone();
        cur.final_residual = f64::NAN;
        let report = check_matrix(&doc(vec![base]), &doc(vec![cur]), &CheckConfig::default());
        assert_eq!(report.cells[0].verdict, Verdict::ResidualRegression);
    }

    #[test]
    fn wall_regression_uses_injected_timings() {
        // Injected timings, no live clocks: 0.1s -> 1.0s at ratio 8 fails.
        let mut base = ok_record(("p", "b", "d"));
        base.wall_secs = 0.1;
        let mut cur = base.clone();
        cur.wall_secs = 1.0;
        let report = check_matrix(&doc(vec![base]), &doc(vec![cur]), &CheckConfig::default());
        assert!(!report.passed());
        assert_eq!(report.cells[0].verdict, Verdict::WallRegression);
    }

    #[test]
    fn short_baseline_wall_times_are_not_gated() {
        // Below min_wall_secs the wall check must not apply, however
        // large the ratio — sub-millisecond cells flake on loaded hosts.
        let mut base = ok_record(("p", "b", "d"));
        base.wall_secs = 0.001;
        let mut cur = base.clone();
        cur.wall_secs = 10.0;
        let report = check_matrix(&doc(vec![base]), &doc(vec![cur]), &CheckConfig::default());
        assert!(report.passed());
    }

    #[test]
    fn sim_time_regression_fails_tightly() {
        let mut base = ok_record(("p", "sim", "d"));
        base.sim_time = Some(1000);
        let mut cur = base.clone();
        cur.sim_time = Some(1400); // 1.4x > 1.25x
        let report = check_matrix(&doc(vec![base]), &doc(vec![cur]), &CheckConfig::default());
        assert!(!report.passed());
        assert_eq!(report.cells[0].verdict, Verdict::SimTimeRegression);
        // Within ratio passes.
        let mut cur = ok_record(("p", "sim", "d"));
        cur.sim_time = Some(1200);
        let mut base = ok_record(("p", "sim", "d"));
        base.sim_time = Some(1000);
        let report = check_matrix(&doc(vec![base]), &doc(vec![cur]), &CheckConfig::default());
        assert!(report.passed());
    }

    #[test]
    fn losing_the_sim_time_metric_fails() {
        let mut base = ok_record(("p", "sim", "d"));
        base.sim_time = Some(1000);
        let mut cur = base.clone();
        cur.sim_time = None;
        let report = check_matrix(&doc(vec![base]), &doc(vec![cur]), &CheckConfig::default());
        assert!(!report.passed());
        assert_eq!(report.cells[0].verdict, Verdict::SimTimeRegression);
    }

    #[test]
    fn missing_and_failed_cells_fail() {
        let base = doc(vec![
            ok_record(("p", "b", "d")),
            ok_record(("p2", "b", "d")),
        ]);
        let mut failed = ok_record(("p", "b", "d"));
        failed.status = "failed".into();
        failed.note = "boom".into();
        let current = doc(vec![failed]);
        let report = check_matrix(&base, &current, &CheckConfig::default());
        assert_eq!(report.failures(), 2);
        let verdicts: Vec<_> = report.cells.iter().map(|c| c.verdict.clone()).collect();
        assert!(verdicts.contains(&Verdict::RunFailed));
        assert!(verdicts.contains(&Verdict::MissingCell));
    }

    #[test]
    fn new_cells_are_informational() {
        let base = doc(vec![ok_record(("p", "b", "d"))]);
        let current = doc(vec![
            ok_record(("p", "b", "d")),
            ok_record(("p3", "b", "d")),
        ]);
        let report = check_matrix(&base, &current, &CheckConfig::default());
        assert!(report.passed());
        assert!(report
            .cells
            .iter()
            .any(|c| c.verdict == Verdict::NewCell && c.key == "p3|b|d"));
    }

    #[test]
    fn diff_table_renders_failures_first() {
        let mut base_bad = ok_record(("p", "b", "d"));
        base_bad.final_residual = 1e-3;
        let mut cur_bad = base_bad.clone();
        cur_bad.final_residual = 10.0;
        let base = doc(vec![ok_record(("fine", "b", "d")), base_bad]);
        let current = doc(vec![ok_record(("fine", "b", "d")), cur_bad]);
        let report = check_matrix(&base, &current, &CheckConfig::default());
        let table = report.render_table();
        let first_data_line = table.lines().nth(2).unwrap();
        assert!(first_data_line.contains("RESIDUAL"), "{table}");
    }

    #[test]
    fn usage_errors_exit_2() {
        assert_eq!(gate_main(&["--bogus".to_string()]), 2);
        assert_eq!(gate_main(&["--seed".to_string()]), 2);
    }
}
