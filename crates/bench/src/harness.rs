//! Shared experiment plumbing: results directories, artefact saving, a
//! tiny experiment context that stamps every run with its parameters, and
//! a cross-backend comparison helper built on the unified `Session` API.

use asynciter_core::session::{RunReport, Session};
use asynciter_opt::traits::Operator;
use std::path::{Path, PathBuf};

/// Runs the same problem once per backend (each closure configures and
/// executes one `Session`) and returns the reports — the
/// same-problem/any-backend comparison as a one-liner. Panics on a
/// failed run, which is what experiment binaries want.
///
/// ```
/// use asynciter_bench::harness::compare_backends;
/// use asynciter_core::session::{Replay, Session};
/// use asynciter_opt::linear::JacobiOperator;
/// use asynciter_numerics::sparse::tridiagonal;
///
/// let op = JacobiOperator::new(tridiagonal(8, 4.0, -1.0), vec![1.0; 8]).unwrap();
/// let reports = compare_backends(&op, vec![
///     Box::new(|s: Session| s.steps(100).backend(Replay).run().unwrap()),
/// ]);
/// assert_eq!(reports[0].backend, "replay");
/// ```
#[allow(clippy::type_complexity)]
pub fn compare_backends<'a, O: Operator>(
    op: &'a O,
    runs: Vec<Box<dyn FnOnce(Session<'a>) -> RunReport + 'a>>,
) -> Vec<RunReport> {
    runs.into_iter().map(|f| f(Session::new(op))).collect()
}

/// Fallible variant of [`compare_backends`]: each closure returns the
/// backend's `Result` and the first failure is reported instead of
/// panicking. Sweeps that must survive individual bad cells (the
/// benchmark gate's scenario matrix) call this once per cell, so an
/// invalid configuration becomes a recorded failure rather than an
/// aborted matrix.
///
/// ```
/// use asynciter_bench::harness::try_compare_backends;
/// use asynciter_core::session::{Replay, Session};
/// use asynciter_opt::linear::JacobiOperator;
/// use asynciter_numerics::sparse::tridiagonal;
///
/// let op = JacobiOperator::new(tridiagonal(8, 4.0, -1.0), vec![1.0; 8]).unwrap();
/// let reports = try_compare_backends(&op, vec![
///     Box::new(|s: Session| s.steps(100).backend(Replay).run()),
/// ]).unwrap();
/// assert_eq!(reports[0].backend, "replay");
/// ```
///
/// # Errors
/// The first backend error encountered, with any later runs skipped.
#[allow(clippy::type_complexity)]
pub fn try_compare_backends<'a>(
    op: &'a dyn Operator,
    runs: Vec<Box<dyn FnOnce(Session<'a>) -> asynciter_core::Result<RunReport> + 'a>>,
) -> asynciter_core::Result<Vec<RunReport>> {
    runs.into_iter().map(|f| f(Session::new(op))).collect()
}

/// The workspace results directory for an experiment id (e.g. `"F1"`),
/// honouring the `ASYNCITER_RESULTS` environment variable and defaulting
/// to `results/` under the current directory.
pub fn results_dir(exp: &str) -> PathBuf {
    let base = std::env::var("ASYNCITER_RESULTS").unwrap_or_else(|_| "results".to_string());
    Path::new(&base).join(exp)
}

/// Saves a text artefact, creating directories as needed.
///
/// # Panics
/// Panics on I/O failure (experiment binaries want loud failures).
pub fn save_text(dir: &Path, name: &str, contents: &str) {
    std::fs::create_dir_all(dir).expect("create results dir");
    std::fs::write(dir.join(name), contents).expect("write artefact");
}

/// Context for one experiment run: id, seed, and collected notes that
/// become the experiment's `summary.txt`.
#[derive(Debug)]
pub struct ExpContext {
    /// Experiment id (e.g. `"T1"`).
    pub exp: String,
    /// Base seed used by the run.
    pub seed: u64,
    dir: PathBuf,
    summary: String,
}

impl ExpContext {
    /// Creates the context and announces the run on stdout.
    pub fn new(exp: &str, seed: u64) -> Self {
        let dir = results_dir(exp);
        println!("=== experiment {exp} (seed {seed}) → {} ===", dir.display());
        Self {
            exp: exp.to_string(),
            seed,
            dir,
            summary: format!("experiment {exp}\nseed {seed}\n\n"),
        }
    }

    /// The experiment's results directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Prints a line and records it in the summary.
    pub fn log(&mut self, line: impl AsRef<str>) {
        let line = line.as_ref();
        println!("{line}");
        self.summary.push_str(line);
        self.summary.push('\n');
    }

    /// Saves a named artefact under the experiment directory.
    pub fn save(&self, name: &str, contents: &str) {
        save_text(&self.dir, name, contents);
    }

    /// Writes the accumulated summary and closes the experiment.
    pub fn finish(self) {
        save_text(&self.dir, "summary.txt", &self.summary);
        println!("=== {} done ===", self.exp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_honours_env() {
        // Serialise against other tests touching the var.
        let dir = results_dir("X0");
        assert!(dir.ends_with("X0"));
    }

    #[test]
    fn context_accumulates_summary() {
        let tmp = std::env::temp_dir().join(format!("asynciter_ctx_{}", std::process::id()));
        std::env::set_var("ASYNCITER_RESULTS", &tmp);
        let mut ctx = ExpContext::new("T0", 7);
        ctx.log("hello");
        ctx.save("a.txt", "artefact");
        let dir = ctx.dir().to_path_buf();
        ctx.finish();
        let summary = std::fs::read_to_string(dir.join("summary.txt")).unwrap();
        assert!(summary.contains("hello"));
        assert!(summary.contains("seed 7"));
        assert_eq!(
            std::fs::read_to_string(dir.join("a.txt")).unwrap(),
            "artefact"
        );
        std::env::remove_var("ASYNCITER_RESULTS");
        std::fs::remove_dir_all(&tmp).ok();
    }
}
