//! Thin wrapper: see `asynciter_bench::experiments::thm1` for the
//! experiment documentation (`--seed N`, `--quick`).
fn main() {
    let (seed, quick) = asynciter_bench::parse_args();
    asynciter_bench::experiments::thm1::run(seed, quick);
}
