//! Thin wrapper: see `asynciter_bench::experiments::fig2` for the
//! experiment documentation (`--seed N`, `--quick`).
fn main() {
    let (seed, quick) = asynciter_bench::parse_args();
    asynciter_bench::experiments::fig2::run(seed, quick);
}
