//! The benchmark-gate binary: runs the backend × problem × delay-model
//! scenario matrix, writes `BENCH_gate.json`, and with `--check`
//! compares against a committed baseline (non-zero exit on regression).
//! All logic lives in `asynciter_bench::gate`; this is the thin shell.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(asynciter_bench::gate::gate_main(&args));
}
