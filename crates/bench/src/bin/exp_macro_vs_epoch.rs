//! Thin wrapper: see `asynciter_bench::experiments::macro_epoch` for the
//! experiment documentation (`--seed N`, `--quick`).
fn main() {
    let (seed, quick) = asynciter_bench::parse_args();
    asynciter_bench::experiments::macro_epoch::run(seed, quick);
}
