//! The conformance-fuzzer binary: generates seeded admissible schedules,
//! checks the differential oracles across backends, shrinks any failure
//! to a replayable counterexample, and writes
//! `CONFORMANCE_report.json`. All logic lives in
//! `asynciter_conformance::runner`; this is the thin shell.
//!
//! ```text
//! cargo run --release -p asynciter-bench --bin conformance -- --quick
//! cargo run --release -p asynciter-bench --bin conformance -- --soak --seed 7
//! cargo run --release -p asynciter-bench --bin conformance -- --inject-fault
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(asynciter_conformance::runner::conformance_main(&args));
}
