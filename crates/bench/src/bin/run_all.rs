//! Regenerates every figure/experiment artefact (DESIGN.md §4) in order.
//! Accepts `--seed N` and `--quick`.
fn main() {
    let (seed, quick) = asynciter_bench::parse_args();
    use asynciter_bench::experiments as e;
    #[allow(clippy::type_complexity)]
    let experiments: Vec<(&str, fn(u64, bool))> = vec![
        ("F1", e::fig1::run),
        ("F2", e::fig2::run),
        ("T1", e::thm1::run),
        ("E1", e::baudet::run),
        ("E2", e::macro_epoch::run),
        ("E3", e::speedup::run),
        ("E4", e::flexible::run),
        ("E5", e::exchange::run),
        ("E6", e::bellman_ford::run),
        ("E7", e::obstacle::run),
        ("E8", e::network_flow::run),
        ("E9", e::newton::run),
        ("E10", e::termination::run),
        ("X1", e::stepsize_delay::run),
    ];
    let t0 = std::time::Instant::now();
    for (name, f) in experiments {
        let t = std::time::Instant::now();
        f(seed, quick);
        println!(">>> {name} finished in {:.1}s\n", t.elapsed().as_secs_f64());
    }
    println!(
        "all experiments regenerated in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}
