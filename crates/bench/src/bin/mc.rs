//! The bounded-exhaustive model-checker binary: enumerates every
//! admissible interleaving of a small cluster scope, checks the four
//! invariants on every edge and terminal state, and shrinks any
//! violation to a replayable corpus counterexample. All logic lives in
//! `asynciter_mc::cli`; this is the thin shell.
//!
//! ```text
//! cargo run --release -p asynciter-bench --bin mc -- --scope quick --stats
//! cargo run --release -p asynciter-bench --bin mc -- --inject-mc-bug
//! cargo run --release -p asynciter-bench --bin mc -- --find-reorder
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(asynciter_mc::cli::mc_main(&args));
}
