//! The multi-tenant service benchmark binary: seeded tenant workloads
//! through the service layer, with baseline checking and the
//! tenant-isolation verifier. All logic lives in
//! `asynciter_bench::service_cli`; this is the thin shell.
//!
//! ```text
//! cargo run --release -p asynciter-bench --bin service -- --tenants 64 --verify
//! cargo run --release -p asynciter-bench --bin service -- --soak --mode free --check baselines/service-soak-baseline.json
//! cargo run --release -p asynciter-bench --bin service -- --inject-scratch-leak --record --verify
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(asynciter_bench::service_cli::service_main(&args));
}
