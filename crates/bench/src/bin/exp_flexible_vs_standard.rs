//! Thin wrapper: see `asynciter_bench::experiments::flexible` for the
//! experiment documentation (`--seed N`, `--quick`).
fn main() {
    let (seed, quick) = asynciter_bench::parse_args();
    asynciter_bench::experiments::flexible::run(seed, quick);
}
