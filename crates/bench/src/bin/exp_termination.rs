//! Thin wrapper: see `asynciter_bench::experiments::termination` for the
//! experiment documentation (`--seed N`, `--quick`).
fn main() {
    let (seed, quick) = asynciter_bench::parse_args();
    asynciter_bench::experiments::termination::run(seed, quick);
}
