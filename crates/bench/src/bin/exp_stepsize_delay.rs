//! Thin wrapper: see `asynciter_bench::experiments::stepsize_delay` for
//! the experiment documentation (`--seed N`, `--quick`).
fn main() {
    let (seed, quick) = asynciter_bench::parse_args();
    asynciter_bench::experiments::stepsize_delay::run(seed, quick);
}
