//! # asynciter-bench
//!
//! The experiment harness: one module (and thin binary) per paper
//! figure/claim — see DESIGN.md §4 for the experiment index and
//! EXPERIMENTS.md for recorded outcomes — plus criterion benches for the
//! timing claims.
//!
//! Binaries write CSV + ASCII-chart artefacts under `results/<exp>/`
//! (override with `ASYNCITER_RESULTS`) and print headline tables to
//! stdout. The `run_all` binary regenerates everything.

#![deny(missing_docs)]
#![warn(clippy::all)]
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod experiments;
pub mod gate;
pub mod harness;
pub mod service_cli;

pub use harness::{compare_backends, results_dir, save_text, try_compare_backends, ExpContext};

/// Parses an optional `--seed N` / `--quick` command line for the
/// experiment binaries. Returns `(seed, quick)`.
pub fn parse_args() -> (u64, bool) {
    let mut seed = 2022u64; // IPPS 2022
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed requires an integer");
            }
            "--quick" => quick = true,
            other => panic!("unknown argument `{other}` (supported: --seed N, --quick)"),
        }
    }
    (seed, quick)
}
