//! The multi-tenant service benchmark CLI: admit a seeded tenant
//! workload, drain it through the service layer, write the
//! machine-readable `BENCH_service.json`, and — in `--check` mode —
//! compare against a committed baseline.
//!
//! The comparator mirrors the gate's asymmetry: everything the service
//! layer computes deterministically (per-tenant statuses, step counts,
//! residual bits, final-iterate hashes, completion counts) is compared
//! strictly, while wall-clock metrics (total wall, throughput, latency
//! percentiles) are gated only when the baseline cell took long enough
//! to time reliably, and with generous ratios — single-core CI hosts
//! must not flake. Because per-tenant payloads are mode-independent
//! (the isolation contract), a deterministic-mode baseline also gates
//! free-running runs: only completion *order* and timing may differ.
//!
//! `--verify` runs the tenant-equivalence oracle over the drained
//! outcome (every job re-run solo, diffed bitwise); with `--record`,
//! any divergence is shrunk to a minimal replayable trace in
//! `--fault-dir`. `--inject-scratch-leak` plants the dirty-lease
//! scratch-pool bug, so `--verify` doubles as the CLI's negative
//! control: the run must exit 1 with the leak named.

use asynciter_conformance::service::{shrink_leak_trace, tenant_plan};
use asynciter_report::stream::{render_hash, ServiceDoc, ServiceRecord};
use asynciter_report::TextTable;
use asynciter_service::{check_outcome, Service, ServiceConfig, ServiceMode};
use std::collections::BTreeMap;
use std::path::PathBuf;

// ---------------------------------------------------------------------------
// The comparator
// ---------------------------------------------------------------------------

/// Regression thresholds for `--check`. Deterministic fields are always
/// strict; these only govern the host-dependent timing metrics.
#[derive(Debug, Clone)]
pub struct ServiceCheckConfig {
    /// Throughput may drop to `1/ratio ×` baseline before failing.
    pub throughput_ratio: f64,
    /// Wall and latency metrics may grow to `ratio ×` baseline.
    pub wall_ratio: f64,
    /// Timing checks only apply when the baseline metric is at least
    /// this long (sub-millisecond sweeps are pure scheduling noise).
    pub min_wall_secs: f64,
}

impl Default for ServiceCheckConfig {
    fn default() -> Self {
        Self {
            throughput_ratio: 8.0,
            wall_ratio: 8.0,
            min_wall_secs: 0.05,
        }
    }
}

/// Outcome of a baseline comparison: every failed check, rendered.
#[derive(Debug, Clone)]
pub struct ServiceCheckReport {
    /// One message per failed check (empty = pass).
    pub failures: Vec<String>,
    /// Records compared (baseline ∪ current, keyed by tenant/job).
    pub records_compared: usize,
}

impl ServiceCheckReport {
    /// True when every check passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

fn record_key(r: &ServiceRecord) -> (u64, u64) {
    (r.tenant, r.job)
}

/// Compares a fresh [`ServiceDoc`] against a committed baseline.
///
/// Strict (bitwise / exact): tenant count, completed/failed/rejected/
/// cancelled totals, and — per `(tenant, job)` record — status, steps,
/// `stopped_early`, residual bits and the final-iterate hash. The
/// execution mode is *not* compared: per-tenant payloads are
/// mode-independent by the isolation contract, so a deterministic
/// baseline legitimately gates a free-running run. Timing metrics are
/// gated per [`ServiceCheckConfig`].
#[must_use]
pub fn check_service_doc(
    base: &ServiceDoc,
    cur: &ServiceDoc,
    cfg: &ServiceCheckConfig,
) -> ServiceCheckReport {
    let mut failures = Vec::new();
    let mut fail = |msg: String| failures.push(msg);
    for (name, b, c) in [
        ("tenants", base.tenants, cur.tenants),
        ("completed", base.completed, cur.completed),
        ("failed", base.failed, cur.failed),
        ("rejected", base.rejected, cur.rejected),
        ("cancelled", base.cancelled, cur.cancelled),
    ] {
        if b != c {
            fail(format!("{name}: baseline {b} vs current {c}"));
        }
    }
    let base_records: BTreeMap<(u64, u64), &ServiceRecord> =
        base.records().map(|r| (record_key(r), r)).collect();
    let cur_records: BTreeMap<(u64, u64), &ServiceRecord> =
        cur.records().map(|r| (record_key(r), r)).collect();
    for (key, b) in &base_records {
        let Some(c) = cur_records.get(key) else {
            fail(format!(
                "tenant {} job {}: record missing from current run",
                key.0, key.1
            ));
            continue;
        };
        let mut field = |name: &str, bv: String, cv: String| {
            if bv != cv {
                fail(format!(
                    "tenant {} job {}: {name} baseline {bv} vs current {cv}",
                    key.0, key.1
                ));
            }
        };
        field("status", b.status.clone(), c.status.clone());
        field("steps", b.steps.to_string(), c.steps.to_string());
        field(
            "stopped_early",
            b.stopped_early.to_string(),
            c.stopped_early.to_string(),
        );
        field(
            "final_residual",
            format!("{:016x}", b.final_residual.to_bits()),
            format!("{:016x}", c.final_residual.to_bits()),
        );
        field(
            "final_x_hash",
            render_hash(b.final_x_hash),
            render_hash(c.final_x_hash),
        );
    }
    for key in cur_records.keys() {
        if !base_records.contains_key(key) {
            fail(format!(
                "tenant {} job {}: record not present in baseline",
                key.0, key.1
            ));
        }
    }
    // Timing: gated only above the measurement floor, with generous
    // ratios (see the module docs).
    if base.wall_secs >= cfg.min_wall_secs {
        if cur.wall_secs > base.wall_secs * cfg.wall_ratio {
            fail(format!(
                "wall {:.3}s exceeds {}x baseline {:.3}s",
                cur.wall_secs, cfg.wall_ratio, base.wall_secs
            ));
        }
        if base.throughput > 0.0 && cur.throughput < base.throughput / cfg.throughput_ratio {
            fail(format!(
                "throughput {:.1}/s below baseline {:.1}/s / {}",
                cur.throughput, base.throughput, cfg.throughput_ratio
            ));
        }
    }
    for (name, b, c) in [
        ("p50 latency", base.p50_latency_secs, cur.p50_latency_secs),
        ("p95 latency", base.p95_latency_secs, cur.p95_latency_secs),
        ("max latency", base.max_latency_secs, cur.max_latency_secs),
    ] {
        if b >= cfg.min_wall_secs && c > b * cfg.wall_ratio {
            fail(format!(
                "{name} {c:.4}s exceeds {}x baseline {b:.4}s",
                cfg.wall_ratio
            ));
        }
    }
    ServiceCheckReport {
        failures,
        records_compared: base_records.len().max(cur_records.len()),
    }
}

// ---------------------------------------------------------------------------
// CLI
// ---------------------------------------------------------------------------

const USAGE: &str = "usage: service [--tenants N | --soak] [--seed N] [--mode det|free] \
[--workers N] [--batch N] [--queue N] [--record] [--verify] [--inject-scratch-leak] \
[--out PATH] [--check BASELINE] [--fault-dir DIR] [--throughput-ratio X] \
[--wall-ratio X] [--min-wall-secs X]

Admits a seeded multi-tenant workload (every catalog problem x every
deterministic backend), drains it through the service layer, writes the
machine-readable BENCH_service.json, and optionally:
  --verify   re-runs every job solo and diffs bitwise (tenant isolation);
             with --record, divergences are shrunk into --fault-dir
  --check    compares against a committed baseline, exiting 1 on any
             regression (deterministic fields strict, timing gated)";

struct ServiceArgs {
    tenants: u64,
    seed: u64,
    free: bool,
    workers: usize,
    batch: usize,
    queue: Option<usize>,
    record: bool,
    verify: bool,
    inject_leak: bool,
    out: PathBuf,
    check: Option<PathBuf>,
    fault_dir: PathBuf,
    cfg: ServiceCheckConfig,
}

fn parse_service_args(args: &[String]) -> Result<ServiceArgs, String> {
    let mut parsed = ServiceArgs {
        tenants: 64,
        seed: 2022,
        free: false,
        workers: 3,
        batch: 64,
        queue: None,
        record: false,
        verify: false,
        inject_leak: false,
        out: PathBuf::from("BENCH_service.json"),
        check: None,
        fault_dir: PathBuf::from("results/service"),
        cfg: ServiceCheckConfig::default(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match a.as_str() {
            "--tenants" => {
                parsed.tenants = val("--tenants")?
                    .parse()
                    .map_err(|_| "--tenants requires an integer".to_string())?;
            }
            "--soak" => parsed.tenants = 1000,
            "--seed" => {
                parsed.seed = val("--seed")?
                    .parse()
                    .map_err(|_| "--seed requires an integer".to_string())?;
            }
            "--mode" => {
                parsed.free = match val("--mode")? {
                    "det" => false,
                    "free" => true,
                    other => return Err(format!("--mode must be det|free (got `{other}`)")),
                };
            }
            "--workers" => {
                parsed.workers = val("--workers")?
                    .parse()
                    .map_err(|_| "--workers requires an integer".to_string())?;
            }
            "--batch" => {
                parsed.batch = val("--batch")?
                    .parse()
                    .map_err(|_| "--batch requires an integer".to_string())?;
            }
            "--queue" => {
                parsed.queue = Some(
                    val("--queue")?
                        .parse()
                        .map_err(|_| "--queue requires an integer".to_string())?,
                );
            }
            "--record" => parsed.record = true,
            "--verify" => parsed.verify = true,
            "--inject-scratch-leak" => parsed.inject_leak = true,
            "--out" => parsed.out = PathBuf::from(val("--out")?),
            "--check" => parsed.check = Some(PathBuf::from(val("--check")?)),
            "--fault-dir" => parsed.fault_dir = PathBuf::from(val("--fault-dir")?),
            "--throughput-ratio" => {
                parsed.cfg.throughput_ratio = parse_f64(val("--throughput-ratio")?)?;
            }
            "--wall-ratio" => parsed.cfg.wall_ratio = parse_f64(val("--wall-ratio")?)?,
            "--min-wall-secs" => parsed.cfg.min_wall_secs = parse_f64(val("--min-wall-secs")?)?,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(parsed)
}

fn parse_f64(text: &str) -> Result<f64, String> {
    text.parse()
        .map_err(|_| format!("`{text}` is not a number"))
}

/// The service CLI: admits the workload, drains, writes the artefact,
/// optionally verifies isolation and checks a baseline. Returns the
/// process exit code: 0 on success, 1 on divergences/regressions/failed
/// jobs, 2 on usage/IO/parse errors.
pub fn service_main(args: &[String]) -> i32 {
    let parsed = match parse_service_args(args) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("service: {msg}\n\n{USAGE}");
            return 2;
        }
    };
    let mode = if parsed.free {
        ServiceMode::FreeRunning {
            workers: parsed.workers,
        }
    } else {
        ServiceMode::Deterministic { seed: parsed.seed }
    };
    let mut svc = Service::new(ServiceConfig {
        queue_capacity: parsed
            .queue
            .unwrap_or_else(|| (parsed.tenants as usize).max(16)),
        batch_size: parsed.batch,
        mode,
        inject_scratch_leak: parsed.inject_leak,
    });
    println!(
        "service: admitting {} tenants (seed {}, {} mode{})",
        parsed.tenants,
        parsed.seed,
        if parsed.free {
            "free-running"
        } else {
            "deterministic"
        },
        if parsed.inject_leak {
            ", scratch leak INJECTED"
        } else {
            ""
        },
    );
    for spec in tenant_plan(parsed.tenants, parsed.seed, parsed.record) {
        if let Err(e) = svc.submit(spec) {
            // Backpressure and validation refusals are part of the
            // benchmark surface: counted in the doc, not fatal.
            eprintln!("service: {e}");
        }
    }
    let outcome = svc.drain();
    let doc = &outcome.doc;

    let mut table = TextTable::new(&["metric", "value"]);
    table.row(&["completed".into(), doc.completed.to_string()]);
    table.row(&["failed".into(), doc.failed.to_string()]);
    table.row(&["rejected".into(), doc.rejected.to_string()]);
    table.row(&["cancelled".into(), doc.cancelled.to_string()]);
    table.row(&["wall".into(), format!("{:.3}s", doc.wall_secs)]);
    table.row(&["throughput".into(), format!("{:.1} jobs/s", doc.throughput)]);
    table.row(&[
        "p50 latency".into(),
        format!("{:.2}ms", doc.p50_latency_secs * 1e3),
    ]);
    table.row(&[
        "p95 latency".into(),
        format!("{:.2}ms", doc.p95_latency_secs * 1e3),
    ]);
    table.row(&[
        "max latency".into(),
        format!("{:.2}ms", doc.max_latency_secs * 1e3),
    ]);
    println!("{}", table.render());

    if let Some(parent) = parsed.out.parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("service: cannot create {}: {e}", parent.display());
                return 2;
            }
        }
    }
    if let Err(e) = std::fs::write(&parsed.out, doc.render()) {
        eprintln!("service: cannot write {}: {e}", parsed.out.display());
        return 2;
    }
    println!(
        "service: {} records in {} batches -> {}",
        doc.records().count(),
        doc.batches.len(),
        parsed.out.display()
    );

    let mut exit = if doc.failed > 0 {
        for r in doc.records().filter(|r| r.status == "failed") {
            eprintln!(
                "service: FAILED tenant {} job {}: {}",
                r.tenant, r.job, r.note
            );
        }
        1
    } else {
        0
    };

    if parsed.verify {
        let divergences = check_outcome(svc.catalog(), &outcome);
        if divergences.is_empty() {
            println!(
                "service: VERIFY PASS — {} jobs bit-identical to their solo runs",
                doc.completed
            );
        } else {
            for d in &divergences {
                eprintln!("service: ISOLATION VIOLATION {d}");
            }
            // A recorded diverging job can be shrunk to a minimal
            // replayable exhibit of the leaked start vector.
            if let Some(job) = outcome
                .jobs
                .iter()
                .find(|c| divergences.first().is_some_and(|d| c.record.job == d.job))
            {
                if job.spec.record {
                    if std::fs::create_dir_all(&parsed.fault_dir).is_err() {
                        eprintln!("service: cannot create {}", parsed.fault_dir.display());
                    } else {
                        let out = parsed.fault_dir.join("service-divergence.trace");
                        match shrink_leak_trace(svc.catalog(), job, &out) {
                            Ok((orig, shrunk)) => println!(
                                "service: divergence shrunk {orig} -> {shrunk} steps -> {}",
                                out.display()
                            ),
                            Err(e) => eprintln!("service: shrink failed: {e}"),
                        }
                    }
                }
            }
            eprintln!(
                "service: VERIFY FAIL — {} divergences across {} jobs",
                divergences.len(),
                doc.completed
            );
            exit = 1;
        }
    }

    if let Some(path) = &parsed.check {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("service: cannot read baseline {}: {e}", path.display());
                return 2;
            }
        };
        let baseline = match ServiceDoc::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("service: corrupt baseline {}: {e}", path.display());
                return 2;
            }
        };
        let report = check_service_doc(&baseline, doc, &parsed.cfg);
        if report.passed() {
            println!(
                "service: CHECK PASS — {} records within thresholds of {}",
                report.records_compared,
                path.display()
            );
        } else {
            for f in &report.failures {
                eprintln!("service: REGRESSION {f}");
            }
            eprintln!(
                "service: CHECK FAIL — {} regressions vs {}",
                report.failures.len(),
                path.display()
            );
            exit = 1;
        }
    }
    exit
}

#[cfg(test)]
mod tests {
    use super::*;
    use asynciter_report::stream::ServiceBatch;

    fn record(tenant: u64, job: u64) -> ServiceRecord {
        ServiceRecord {
            tenant,
            job,
            problem: "jacobi".into(),
            backend: "replay".into(),
            status: "ok".into(),
            note: String::new(),
            seed: 7,
            steps: 96,
            final_residual: 4.5e-9,
            final_x_hash: 0xDEAD_BEEF_0123_4567,
            stopped_early: true,
            submitted_at: tenant,
            completed_at: tenant + 1,
            wall_secs: 0.001,
        }
    }

    fn doc(records: Vec<ServiceRecord>) -> ServiceDoc {
        let completed = records.iter().filter(|r| r.status == "ok").count() as u64;
        ServiceDoc {
            schema_version: 1,
            mode: "deterministic".into(),
            tenants: records.len() as u64,
            workers: 1,
            queue_capacity: 64,
            batch_size: 64,
            completed,
            failed: 0,
            rejected: 0,
            cancelled: 0,
            wall_secs: 0.01,
            throughput: 100.0,
            p50_latency_secs: 0.001,
            p95_latency_secs: 0.002,
            max_latency_secs: 0.003,
            batches: vec![ServiceBatch { seq: 0, records }],
        }
    }

    #[test]
    fn identical_docs_pass() {
        let d = doc(vec![record(0, 0), record(1, 1)]);
        let report = check_service_doc(&d, &d.clone(), &ServiceCheckConfig::default());
        assert!(report.passed(), "{:?}", report.failures);
        assert_eq!(report.records_compared, 2);
    }

    #[test]
    fn deterministic_fields_are_strict() {
        let base = doc(vec![record(0, 0)]);
        for mutate in [
            (|r: &mut ServiceRecord| r.steps += 1) as fn(&mut ServiceRecord),
            |r| r.final_x_hash ^= 1,
            |r| r.final_residual += 1e-18,
            |r| r.status = "failed".into(),
            |r| r.stopped_early = false,
        ] {
            let mut r = record(0, 0);
            mutate(&mut r);
            let cur = doc(vec![r]);
            let report = check_service_doc(&base, &cur, &ServiceCheckConfig::default());
            assert!(!report.passed(), "mutation not caught");
        }
    }

    #[test]
    fn free_running_completion_order_is_not_a_regression() {
        // Same records, different batch order and mode: per-tenant
        // payloads match, so the check passes.
        let base = doc(vec![record(0, 0), record(1, 1)]);
        let mut cur = doc(vec![record(1, 1), record(0, 0)]);
        cur.mode = "free-running".into();
        cur.workers = 4;
        let report = check_service_doc(&base, &cur, &ServiceCheckConfig::default());
        assert!(report.passed(), "{:?}", report.failures);
    }

    #[test]
    fn missing_and_extra_records_fail() {
        let base = doc(vec![record(0, 0), record(1, 1)]);
        let cur = doc(vec![record(0, 0), record(2, 2)]);
        let report = check_service_doc(&base, &cur, &ServiceCheckConfig::default());
        assert_eq!(report.failures.len(), 2, "{:?}", report.failures);
    }

    #[test]
    fn count_mismatches_fail() {
        let base = doc(vec![record(0, 0)]);
        let mut cur = doc(vec![record(0, 0)]);
        cur.rejected = 3;
        let report = check_service_doc(&base, &cur, &ServiceCheckConfig::default());
        assert!(!report.passed());
        assert!(
            report.failures[0].contains("rejected"),
            "{:?}",
            report.failures
        );
    }

    #[test]
    fn timing_gates_use_injected_values_and_the_floor() {
        // Below the floor: a 1000x wall blowup is noise, not a failure.
        let base = doc(vec![record(0, 0)]);
        let mut cur = doc(vec![record(0, 0)]);
        cur.wall_secs = 10.0;
        cur.throughput = 0.1;
        let report = check_service_doc(&base, &cur, &ServiceCheckConfig::default());
        assert!(report.passed(), "{:?}", report.failures);
        // Above the floor: the ratios bite.
        let mut base = doc(vec![record(0, 0)]);
        base.wall_secs = 1.0;
        base.throughput = 1000.0;
        let mut cur = doc(vec![record(0, 0)]);
        cur.wall_secs = 9.0;
        cur.throughput = 1.0;
        let report = check_service_doc(&base, &cur, &ServiceCheckConfig::default());
        assert_eq!(report.failures.len(), 2, "{:?}", report.failures);
    }

    #[test]
    fn usage_errors_exit_2() {
        assert_eq!(service_main(&["--bogus".to_string()]), 2);
        assert_eq!(service_main(&["--tenants".to_string()]), 2);
        assert_eq!(service_main(&["--mode".to_string(), "warp".to_string()]), 2);
    }
}
