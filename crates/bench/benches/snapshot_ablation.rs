//! DESIGN.md §5.1 — snapshot-consistency ablation: relaxed per-component
//! atomic reads (inconsistent snapshots, the true asynchronous model) vs
//! globally consistent snapshots through a readers–writer lock.

use asynciter_models::partition::Partition;
use asynciter_opt::linear::JacobiOperator;
use asynciter_runtime::async_engine::{AsyncConfig, AsyncSharedRunner, SnapshotMode};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, SamplingMode};

fn snapshot_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_ablation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sampling_mode(SamplingMode::Flat);
    let n = 512;
    let op = JacobiOperator::new(
        asynciter_numerics::sparse::tridiagonal(n, 4.0, -1.0),
        vec![1.0; n],
    )
    .unwrap();
    let workers = 4;
    let partition = Partition::blocks(n, workers).unwrap();
    let x0 = vec![0.0; n];

    for mode in [SnapshotMode::Relaxed, SnapshotMode::Locked] {
        group.bench_with_input(
            BenchmarkId::new("to_residual", format!("{mode:?}")),
            &mode,
            |b, &mode| {
                b.iter(|| {
                    AsyncSharedRunner::run(
                        &op,
                        &x0,
                        &partition,
                        &AsyncConfig::new(workers, 100_000_000)
                            .with_target_residual(1e-9)
                            .with_snapshot(mode),
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, snapshot_ablation);
criterion_main!(benches);
