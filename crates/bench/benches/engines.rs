//! Replay-engine throughput: cost per asynchronous step across schedule
//! families and label-storage modes.

use asynciter_core::engine::{EngineConfig, ReplayEngine};
use asynciter_models::schedule::{ChaoticBounded, SyncJacobi, UnboundedSqrtDelay};
use asynciter_models::LabelStore;
use asynciter_numerics::sparse::tridiagonal;
use asynciter_opt::linear::JacobiOperator;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay_engine");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let n = 256;
    let steps = 2_000u64;
    let op = JacobiOperator::new(tridiagonal(n, 4.0, -1.0), vec![1.0; n]).unwrap();
    let x0 = vec![0.0; n];
    group.throughput(Throughput::Elements(steps));

    group.bench_function(BenchmarkId::new("schedule", "sync"), |b| {
        b.iter(|| {
            let mut gen = SyncJacobi::new(n);
            ReplayEngine::run(&op, &x0, &mut gen, &EngineConfig::fixed(steps), None).unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("schedule", "chaotic_ooo"), |b| {
        b.iter(|| {
            let mut gen = ChaoticBounded::new(n, n / 4, n / 2, 16, false, 7);
            ReplayEngine::run(&op, &x0, &mut gen, &EngineConfig::fixed(steps), None).unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("schedule", "unbounded_sqrt"), |b| {
        b.iter(|| {
            let mut gen = UnboundedSqrtDelay::new(n, n / 4, n / 2, 1.0, 7);
            ReplayEngine::run(&op, &x0, &mut gen, &EngineConfig::fixed(steps), None).unwrap()
        })
    });
    // Label storage ablation: Full vs MinOnly trace recording.
    group.bench_function(BenchmarkId::new("labels", "full"), |b| {
        b.iter(|| {
            let mut gen = ChaoticBounded::new(n, n / 4, n / 2, 16, false, 7);
            let cfg = EngineConfig::fixed(steps).with_labels(LabelStore::Full);
            ReplayEngine::run(&op, &x0, &mut gen, &cfg, None).unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("labels", "min_only"), |b| {
        b.iter(|| {
            let mut gen = ChaoticBounded::new(n, n / 4, n / 2, 16, false, 7);
            let cfg = EngineConfig::fixed(steps).with_labels(LabelStore::MinOnly);
            ReplayEngine::run(&op, &x0, &mut gen, &cfg, None).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, engine_throughput);
criterion_main!(benches);
