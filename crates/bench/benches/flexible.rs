//! E4 companion bench: flexible-communication publish-period sweep on the
//! deterministic engine (outer steps are deterministic; criterion
//! measures the wall cost of the whole run).

use asynciter_core::flexible::{FlexibleConfig, FlexibleEngine};
use asynciter_models::partition::Partition;
use asynciter_models::schedule::BlockRoundRobin;
use asynciter_numerics::norm::WeightedMaxNorm;
use asynciter_numerics::sparse::tridiagonal;
use asynciter_opt::linear::JacobiOperator;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn flexible(c: &mut Criterion) {
    let mut group = c.benchmark_group("flexible_publish_period");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let n = 64;
    let op = JacobiOperator::new(tridiagonal(n, 4.0, -1.0), vec![1.0; n]).unwrap();
    let norm = WeightedMaxNorm::uniform(n);
    let m = 8usize;

    for p in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("p", p), &p, |b, &p| {
            b.iter(|| {
                let mut gen = BlockRoundRobin::new(Partition::blocks(n, 8).unwrap(), 10);
                let cfg = FlexibleConfig::new(500, m).with_publish_period(p);
                FlexibleEngine::run(&op, &vec![0.0; n], &mut gen, &cfg, &norm, None).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, flexible);
criterion_main!(benches);
