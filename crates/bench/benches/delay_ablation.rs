//! DESIGN.md §5.3 — delay-regime ablation: deterministic-engine steps to
//! reach `ε` as the delay bound grows (b ∈ {1, 4, 16, 64}) and for the
//! unbounded `√j` regime. Criterion measures the wall cost; the
//! steps-to-ε counts are printed once per configuration.

use asynciter_core::engine::{EngineConfig, ReplayEngine};
use asynciter_core::stopping::StoppingRule;
use asynciter_models::schedule::{ChaoticBounded, ScheduleGen, UnboundedSqrtDelay};
use asynciter_models::LabelStore;
use asynciter_numerics::sparse::tridiagonal;
use asynciter_opt::linear::JacobiOperator;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn steps_to_eps(op: &JacobiOperator, gen: &mut dyn ScheduleGen, xstar: &[f64]) -> u64 {
    let cfg = EngineConfig::fixed(5_000_000)
        .with_labels(LabelStore::MinOnly)
        .with_stopping(StoppingRule::ErrorBelow {
            eps: 1e-10,
            check_every: 16,
        });
    let res = ReplayEngine::run(op, &vec![0.0; op.a().rows()], gen, &cfg, Some(xstar)).unwrap();
    assert!(res.stopped_early);
    res.steps_run
}

fn delay_ablation(c: &mut Criterion) {
    let n = 64;
    let op = JacobiOperator::new(tridiagonal(n, 4.0, -1.0), vec![1.0; n]).unwrap();
    let xstar = op.solve_dense_spd().unwrap();
    let mut group = c.benchmark_group("delay_ablation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    for b in [1u64, 4, 16, 64] {
        let steps = steps_to_eps(
            &op,
            &mut ChaoticBounded::new(n, n / 4, n / 2, b, false, 7),
            &xstar,
        );
        println!("delay bound b={b}: {steps} steps to 1e-10");
        group.bench_with_input(BenchmarkId::new("bounded", b), &b, |bch, &b| {
            bch.iter(|| {
                steps_to_eps(
                    &op,
                    &mut ChaoticBounded::new(n, n / 4, n / 2, b, false, 7),
                    &xstar,
                )
            })
        });
    }
    let steps = steps_to_eps(
        &op,
        &mut UnboundedSqrtDelay::new(n, n / 4, n / 2, 1.0, 7),
        &xstar,
    );
    println!("unbounded sqrt delays: {steps} steps to 1e-10");
    group.bench_function("unbounded_sqrt", |bch| {
        bch.iter(|| {
            steps_to_eps(
                &op,
                &mut UnboundedSqrtDelay::new(n, n / 4, n / 2, 1.0, 7),
                &xstar,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, delay_ablation);
criterion_main!(benches);
