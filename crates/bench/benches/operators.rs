//! Operator-application kernels: cost of one full application for every
//! operator family in the workspace.

use asynciter_opt::bellman_ford::{BellmanFordOperator, Graph};
use asynciter_opt::linear::JacobiOperator;
use asynciter_opt::logistic::LogisticGradOperator;
use asynciter_opt::network_flow::{NetworkFlowProblem, PriceRelaxation};
use asynciter_opt::obstacle::{ObstacleProblem, ProjectedJacobi};
use asynciter_opt::prox::L1;
use asynciter_opt::proxgrad::{gamma_max, SparseProxGrad};
use asynciter_opt::quadratic::SparseQuadratic;
use asynciter_opt::traits::{Operator, SmoothObjective};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_full_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("operator_apply");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let n = 1024;

    let jacobi = JacobiOperator::new(
        asynciter_numerics::sparse::tridiagonal(n, 4.0, -1.0),
        vec![1.0; n],
    )
    .unwrap();
    let f = SparseQuadratic::random_diag_dominant(n, 6, 0.4, 1.0, 3).unwrap();
    let gamma = 0.9 * gamma_max(f.strong_convexity(), f.lipschitz());
    let proxgrad = SparseProxGrad::new(f, L1::new(0.1), gamma).unwrap();
    let obstacle = ProjectedJacobi::new(ObstacleProblem::bump(32, 32, 0.6).unwrap());
    let flow = PriceRelaxation::new(NetworkFlowProblem::random(n, n, 5).unwrap(), 0).unwrap();
    let bf = BellmanFordOperator::new(Graph::random_geometric(n, 0.08, 5).unwrap(), 0).unwrap();

    let x = vec![0.5; n];
    let mut out = vec![0.0; n];
    let x_obs = vec![0.5; obstacle.dim()];
    let mut out_obs = vec![0.0; obstacle.dim()];

    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("jacobi_tridiag", |b| {
        b.iter(|| jacobi.apply(black_box(&x), &mut out))
    });
    group.bench_function("sparse_proxgrad_l1", |b| {
        b.iter(|| proxgrad.apply(black_box(&x), &mut out))
    });
    group.bench_function("projected_jacobi_obstacle", |b| {
        b.iter(|| obstacle.apply(black_box(&x_obs), &mut out_obs))
    });
    group.bench_function("network_flow_price", |b| {
        b.iter(|| flow.apply(black_box(&x), &mut out))
    });
    group.bench_function("bellman_ford", |b| {
        b.iter(|| bf.apply(black_box(&x), &mut out))
    });
    group.finish();
}

/// The scratch-buffer payoff on a densely-coupled operator: a logistic
/// half-block update through the shared-weight scratch path
/// (`update_active_with`, one `O(m·n)` weight pass for the whole block)
/// vs the naive per-component path (`update_active`, one weight pass
/// *per component*). The ratio is the engines' per-step win.
fn bench_logistic_scratch(c: &mut Criterion) {
    let mut group = c.benchmark_group("logistic_block_update");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let (n, m) = (24, 240);
    let op = LogisticGradOperator::certified_random(n, m, 2.0, 7).unwrap();
    let x = vec![0.5; n];
    let mut out = vec![0.0; n];
    let mut scratch = vec![0.0; op.scratch_len()];
    let active: Vec<usize> = (0..n / 2).collect();

    group.throughput(Throughput::Elements(active.len() as u64));
    group.bench_function("scratch_update_active_with", |b| {
        b.iter(|| op.update_active_with(black_box(&x), &active, &mut out, &mut scratch))
    });
    group.bench_function("naive_update_active", |b| {
        b.iter(|| op.update_active(black_box(&x), &active, &mut out))
    });
    group.finish();
}

criterion_group!(benches, bench_full_apply, bench_logistic_scratch);
criterion_main!(benches);
