//! DESIGN.md §5.2 — steering-policy ablation: how the choice of `S_j`
//! (round-robin coordinate, block round-robin, random subsets of varying
//! width) affects macro-iteration length and convergence work.

use asynciter_core::engine::{EngineConfig, ReplayEngine};
use asynciter_core::stopping::StoppingRule;
use asynciter_models::macroiter::macro_iterations;
use asynciter_models::partition::Partition;
use asynciter_models::schedule::{
    record, BlockRoundRobin, ChaoticBounded, CyclicCoordinate, ScheduleGen,
};
use asynciter_models::LabelStore;
use asynciter_numerics::sparse::tridiagonal;
use asynciter_opt::linear::JacobiOperator;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn steering_ablation(c: &mut Criterion) {
    let n = 64;
    let op = JacobiOperator::new(tridiagonal(n, 4.0, -1.0), vec![1.0; n]).unwrap();
    let xstar = op.solve_dense_spd().unwrap();
    let mut group = c.benchmark_group("steering_ablation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    #[allow(clippy::type_complexity)]
    let make: Vec<(&str, Box<dyn Fn() -> Box<dyn ScheduleGen>>)> = vec![
        (
            "cyclic",
            Box::new(move || Box::new(CyclicCoordinate::new(n))),
        ),
        (
            "block_rr_8",
            Box::new(move || Box::new(BlockRoundRobin::new(Partition::blocks(n, 8).unwrap(), 2))),
        ),
        (
            "random_thin",
            Box::new(move || Box::new(ChaoticBounded::new(n, 1, 4, 8, false, 7))),
        ),
        (
            "random_wide",
            Box::new(move || Box::new(ChaoticBounded::new(n, n / 2, n, 8, false, 7))),
        ),
    ];

    for (name, factory) in &make {
        // Macro-iteration cadence (printed once).
        let trace = record(factory().as_mut(), 20_000, LabelStore::MinOnly);
        let m = macro_iterations(&trace);
        println!(
            "steering {name}: {} macro-iterations over 20000 steps (mean length {:.1})",
            m.count(),
            20_000.0 / m.count().max(1) as f64
        );
        group.bench_with_input(BenchmarkId::new("to_eps", *name), name, |b, _| {
            b.iter(|| {
                let mut gen = factory();
                let cfg = EngineConfig::fixed(5_000_000)
                    .with_labels(LabelStore::MinOnly)
                    .with_stopping(StoppingRule::ErrorBelow {
                        eps: 1e-10,
                        check_every: 16,
                    });
                ReplayEngine::run(&op, &vec![0.0; n], gen.as_mut(), &cfg, Some(&xstar)).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, steering_ablation);
criterion_main!(benches);
