//! E3 companion bench: threaded async vs spin-barrier sync wall time to a
//! fixed residual, with and without load imbalance (criterion-managed
//! statistics instead of one-shot timing).

use asynciter_models::partition::Partition;
use asynciter_opt::linear::JacobiOperator;
use asynciter_runtime::async_engine::{AsyncConfig, AsyncSharedRunner};
use asynciter_runtime::imbalance::linear_imbalance;
use asynciter_runtime::sync_engine::{SyncConfig, SyncRunner};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, SamplingMode};

fn speedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("async_vs_sync");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sampling_mode(SamplingMode::Flat);
    let grid = 12;
    let n = grid * grid;
    let op = JacobiOperator::new(
        asynciter_numerics::sparse::laplacian_2d(grid, grid, 1.0),
        vec![1.0; n],
    )
    .unwrap();
    let workers = 4;
    let partition = Partition::blocks(n, workers).unwrap();
    let x0 = vec![0.0; n];
    let target = 1e-6;
    let base = 2_000u64;

    for factor in [1.0, 8.0] {
        let spin = linear_imbalance(workers, base, factor);
        group.bench_with_input(
            BenchmarkId::new("sync", format!("imbalance_{factor}x")),
            &spin,
            |b, spin| {
                b.iter(|| {
                    SyncRunner::run(
                        &op,
                        &x0,
                        &partition,
                        &SyncConfig::new(workers, 1_000_000)
                            .with_target_change(target / 10.0)
                            .with_spin(spin.clone()),
                    )
                    .unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("async", format!("imbalance_{factor}x")),
            &spin,
            |b, spin| {
                b.iter(|| {
                    AsyncSharedRunner::run(
                        &op,
                        &x0,
                        &partition,
                        &AsyncConfig::new(workers, 100_000_000)
                            .with_target_residual(target)
                            .with_spin(spin.clone()),
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, speedup);
criterion_main!(benches);
