//! Small statistics helpers for the experiment harness.
//!
//! The headline use is [`fit_power_law`]: experiment E1 verifies Baudet's
//! claim that the delay of the slow processor grows like `√j` by fitting
//! `d(j) ≈ c · j^p` in log–log space and checking `p ≈ 0.5`.

/// Arithmetic mean; 0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; 0 for inputs shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// `q`-th percentile (0 ≤ q ≤ 100) with linear interpolation between order
/// statistics. Returns `None` for empty input.
///
/// # Panics
/// Panics when `q` is outside `[0, 100]`.
pub fn percentile(xs: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&q), "percentile: q out of range");
    if xs.is_empty() {
        return None;
    }
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("percentile: NaN in input"));
    let pos = q / 100.0 * (s.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(s[lo])
    } else {
        let t = pos - lo as f64;
        Some(s[lo] * (1.0 - t) + s[hi] * t)
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> Option<f64> {
    percentile(xs, 50.0)
}

/// Geometric mean of strictly positive samples; `None` if empty or any
/// sample is not positive.
pub fn geometric_mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    Some((xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp())
}

/// Ordinary least squares fit `y ≈ a + b·x`; returns `(a, b, r²)`.
/// Returns `None` when fewer than two points or degenerate `x`.
pub fn linear_fit(x: &[f64], y: &[f64]) -> Option<(f64, f64, f64)> {
    assert_eq!(x.len(), y.len(), "linear_fit: length mismatch");
    if x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = mean(x);
    let my = mean(y);
    let sxx: f64 = x.iter().map(|xi| (xi - mx) * (xi - mx)).sum();
    let sxy: f64 = x.iter().zip(y).map(|(xi, yi)| (xi - mx) * (yi - my)).sum();
    if sxx == 0.0 {
        return None;
    }
    let b = sxy / sxx;
    let a = my - b * mx;
    let syy: f64 = y.iter().map(|yi| (yi - my) * (yi - my)).sum();
    let r2 = if syy == 0.0 {
        1.0
    } else {
        let ss_res: f64 = x
            .iter()
            .zip(y)
            .map(|(xi, yi)| {
                let e = yi - (a + b * xi);
                e * e
            })
            .sum();
        1.0 - ss_res / syy
    };
    let _ = n;
    Some((a, b, r2))
}

/// Fits `y ≈ c · x^p` by OLS in log–log space over strictly positive data;
/// returns `(c, p, r²)`. Points with non-positive `x` or `y` are skipped.
/// Returns `None` when fewer than two usable points remain.
pub fn fit_power_law(x: &[f64], y: &[f64]) -> Option<(f64, f64, f64)> {
    assert_eq!(x.len(), y.len(), "fit_power_law: length mismatch");
    let (lx, ly): (Vec<f64>, Vec<f64>) = x
        .iter()
        .zip(y)
        .filter(|(&a, &b)| a > 0.0 && b > 0.0)
        .map(|(&a, &b)| (a.ln(), b.ln()))
        .unzip();
    let (a, b, r2) = linear_fit(&lx, &ly)?;
    Some((a.exp(), b, r2))
}

/// Estimated geometric decay rate of a positive sequence `e_k ≈ e_0 · ρ^k`:
/// fits `ln e_k` against `k` and returns `ρ = exp(slope)`. `None` when the
/// sequence has fewer than two positive entries.
pub fn geometric_rate(errors: &[f64]) -> Option<f64> {
    let (ks, ls): (Vec<f64>, Vec<f64>) = errors
        .iter()
        .enumerate()
        .filter(|(_, &e)| e > 0.0)
        .map(|(k, &e)| (k as f64, e.ln()))
        .unzip();
    linear_fit(&ks, &ls).map(|(_, b, _)| b.exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_hand_example() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(std_dev(&xs), 2.0);
    }

    #[test]
    fn mean_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(4.0));
        assert_eq!(percentile(&xs, 50.0), Some(2.5));
        assert_eq!(median(&[5.0, 1.0, 3.0]), Some(3.0));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn percentile_unsorted_input() {
        assert_eq!(percentile(&[9.0, 1.0, 5.0], 100.0), Some(9.0));
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[1.0, 4.0]), Some(2.0));
        assert_eq!(geometric_mean(&[]), None);
        assert_eq!(geometric_mean(&[1.0, 0.0]), None);
        assert_eq!(geometric_mean(&[1.0, -2.0]), None);
    }

    #[test]
    fn linear_fit_exact_line() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [1.0, 3.0, 5.0, 7.0];
        let (a, b, r2) = linear_fit(&x, &y).unwrap();
        assert!((a - 1.0).abs() < 1e-12);
        assert!((b - 2.0).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_degenerate_x() {
        assert!(linear_fit(&[1.0, 1.0], &[0.0, 5.0]).is_none());
        assert!(linear_fit(&[1.0], &[0.0]).is_none());
    }

    #[test]
    fn power_law_recovers_sqrt() {
        let x: Vec<f64> = (1..200).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v.sqrt()).collect();
        let (c, p, r2) = fit_power_law(&x, &y).unwrap();
        assert!((c - 3.0).abs() < 1e-9, "c = {c}");
        assert!((p - 0.5).abs() < 1e-9, "p = {p}");
        assert!(r2 > 0.999999);
    }

    #[test]
    fn power_law_skips_nonpositive_points() {
        let x = [0.0, 1.0, 2.0, 4.0];
        let y = [5.0, 1.0, 2.0, 4.0];
        // First point skipped (x=0); remaining fit y = x exactly.
        let (c, p, _) = fit_power_law(&x, &y).unwrap();
        assert!((c - 1.0).abs() < 1e-9);
        assert!((p - 1.0).abs() < 1e-9);
    }

    #[test]
    fn geometric_rate_of_pure_decay() {
        let errs: Vec<f64> = (0..20).map(|k| 7.0 * 0.8_f64.powi(k)).collect();
        let rho = geometric_rate(&errs).unwrap();
        assert!((rho - 0.8).abs() < 1e-9, "rho = {rho}");
    }

    #[test]
    fn geometric_rate_handles_zeros() {
        assert!(geometric_rate(&[1.0, 0.0, 0.0]).is_none()); // single positive point
    }
}
