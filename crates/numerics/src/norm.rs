//! Weighted maximum norms.
//!
//! The convergence theory of totally asynchronous iterations is phrased in
//! the weighted maximum norm
//!
//! ```text
//! ‖x‖_u = max_{1≤i≤n} |x_i| / u_i ,     u_i > 0,
//! ```
//!
//! (El-Baz IPPS 2022, Eq. (3); Bertsekas–Tsitsiklis Ch. 6). Contraction with
//! respect to some `‖·‖_u` is exactly the property that survives unbounded
//! delays and out-of-order messages, which is why this crate treats the
//! weighted max norm as a first-class object rather than hard-coding the
//! unweighted `‖·‖_∞`.
//!
//! [`BlockWeightedMaxNorm`] generalises to block components: the paper's
//! `‖x̃_i(j) − x_i*‖_i / u_i` uses a per-block inner norm `‖·‖_i` (here the
//! Euclidean norm on the block) scaled by a positive weight.

use crate::error::NumericsError;

/// Weighted maximum norm `‖x‖_u = max_i |x_i|/u_i` with positive weights.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedMaxNorm {
    u: Vec<f64>,
}

impl WeightedMaxNorm {
    /// Builds a weighted max norm from positive weights `u`.
    ///
    /// # Errors
    /// Returns [`NumericsError::InvalidParameter`] if any weight is not
    /// strictly positive and finite, or [`NumericsError::Empty`] when `u`
    /// is empty.
    pub fn new(u: Vec<f64>) -> crate::Result<Self> {
        if u.is_empty() {
            return Err(NumericsError::Empty {
                context: "WeightedMaxNorm::new",
            });
        }
        if let Some((i, &w)) = u
            .iter()
            .enumerate()
            .find(|(_, &w)| !(w.is_finite() && w > 0.0))
        {
            return Err(NumericsError::InvalidParameter {
                name: "u",
                message: format!("weight u[{i}] = {w} must be finite and > 0"),
            });
        }
        Ok(Self { u })
    }

    /// The unweighted `‖·‖_∞` on `ℝⁿ` (all weights 1).
    pub fn uniform(n: usize) -> Self {
        Self { u: vec![1.0; n] }
    }

    /// Dimension `n`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.u.len()
    }

    /// The weight vector.
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.u
    }

    /// Evaluates `‖x‖_u`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.dim()`.
    #[inline]
    pub fn eval(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.u.len(), "WeightedMaxNorm::eval: dim mismatch");
        x.iter()
            .zip(&self.u)
            .fold(0.0_f64, |m, (&v, &w)| m.max(v.abs() / w))
    }

    /// Evaluates `‖x − y‖_u`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    #[inline]
    pub fn dist(&self, x: &[f64], y: &[f64]) -> f64 {
        assert_eq!(x.len(), self.u.len(), "WeightedMaxNorm::dist: dim mismatch");
        assert_eq!(y.len(), self.u.len(), "WeightedMaxNorm::dist: dim mismatch");
        x.iter()
            .zip(y)
            .zip(&self.u)
            .fold(0.0_f64, |m, ((&a, &b), &w)| m.max((a - b).abs() / w))
    }

    /// Weighted magnitude of a single component: `|x_i|/u_i`.
    ///
    /// # Panics
    /// Panics if `i >= self.dim()`.
    #[inline]
    pub fn component(&self, i: usize, xi: f64) -> f64 {
        xi.abs() / self.u[i]
    }

    /// Index attaining the max along with the attained value, or `None`
    /// for zero-dimensional input.
    pub fn argmax(&self, x: &[f64]) -> Option<(usize, f64)> {
        assert_eq!(
            x.len(),
            self.u.len(),
            "WeightedMaxNorm::argmax: dim mismatch"
        );
        let mut best: Option<(usize, f64)> = None;
        for (i, (&v, &w)) in x.iter().zip(&self.u).enumerate() {
            let m = v.abs() / w;
            if best.map(|(_, b)| m > b).unwrap_or(true) {
                best = Some((i, m));
            }
        }
        best
    }
}

/// Block-weighted maximum norm: components are contiguous blocks, each
/// measured in the Euclidean norm and scaled by a positive weight:
///
/// ```text
/// ‖x‖ = max_b ‖x_{block b}‖₂ / u_b .
/// ```
///
/// This is the norm used in the flexible-communication constraint (3) when
/// iterate components are vector blocks owned by different processors.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockWeightedMaxNorm {
    /// Block boundaries: block `b` covers `offsets[b]..offsets[b+1]`.
    offsets: Vec<usize>,
    u: Vec<f64>,
}

impl BlockWeightedMaxNorm {
    /// Builds a block norm from block sizes and per-block weights.
    ///
    /// # Errors
    /// Returns an error when the numbers of sizes and weights differ, a
    /// block is empty, or a weight is not positive.
    pub fn new(block_sizes: &[usize], u: Vec<f64>) -> crate::Result<Self> {
        if block_sizes.is_empty() {
            return Err(NumericsError::Empty {
                context: "BlockWeightedMaxNorm::new",
            });
        }
        if block_sizes.len() != u.len() {
            return Err(NumericsError::DimensionMismatch {
                expected: block_sizes.len(),
                actual: u.len(),
                context: "BlockWeightedMaxNorm::new (weights)",
            });
        }
        if let Some((b, _)) = block_sizes.iter().enumerate().find(|(_, &s)| s == 0) {
            return Err(NumericsError::InvalidParameter {
                name: "block_sizes",
                message: format!("block {b} is empty"),
            });
        }
        if let Some((b, &w)) = u
            .iter()
            .enumerate()
            .find(|(_, &w)| !(w.is_finite() && w > 0.0))
        {
            return Err(NumericsError::InvalidParameter {
                name: "u",
                message: format!("weight u[{b}] = {w} must be finite and > 0"),
            });
        }
        let mut offsets = Vec::with_capacity(block_sizes.len() + 1);
        offsets.push(0);
        let mut acc = 0usize;
        for &s in block_sizes {
            acc += s;
            offsets.push(acc);
        }
        Ok(Self { offsets, u })
    }

    /// Uniform partition of `n` components into `nb` blocks (the last block
    /// absorbs the remainder), all weights 1.
    ///
    /// # Errors
    /// Errors when `nb == 0` or `nb > n`.
    pub fn uniform_partition(n: usize, nb: usize) -> crate::Result<Self> {
        if nb == 0 || nb > n {
            return Err(NumericsError::InvalidParameter {
                name: "nb",
                message: format!("need 1 <= nb <= n, got nb={nb}, n={n}"),
            });
        }
        let base = n / nb;
        let rem = n % nb;
        let sizes: Vec<usize> = (0..nb).map(|b| base + usize::from(b < rem)).collect();
        Self::new(&sizes, vec![1.0; nb])
    }

    /// Number of blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.u.len()
    }

    /// Total dimension (sum of block sizes).
    #[inline]
    pub fn dim(&self) -> usize {
        *self.offsets.last().expect("offsets nonempty")
    }

    /// Range of component indices covered by block `b`.
    ///
    /// # Panics
    /// Panics if `b >= self.num_blocks()`.
    #[inline]
    pub fn block_range(&self, b: usize) -> std::ops::Range<usize> {
        self.offsets[b]..self.offsets[b + 1]
    }

    /// The block that owns component `i`.
    ///
    /// # Panics
    /// Panics if `i >= self.dim()`.
    pub fn block_of(&self, i: usize) -> usize {
        assert!(i < self.dim(), "BlockWeightedMaxNorm::block_of: index");
        // offsets is sorted; partition_point returns the first offset > i.
        self.offsets.partition_point(|&o| o <= i) - 1
    }

    /// Evaluates the block norm of `x`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn eval(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim(), "BlockWeightedMaxNorm::eval: dim");
        let mut m = 0.0_f64;
        for b in 0..self.num_blocks() {
            let r = self.block_range(b);
            m = m.max(crate::vecops::norm2(&x[r]) / self.u[b]);
        }
        m
    }

    /// Evaluates the block norm of `x − y`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn dist(&self, x: &[f64], y: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim(), "BlockWeightedMaxNorm::dist: dim");
        assert_eq!(y.len(), self.dim(), "BlockWeightedMaxNorm::dist: dim");
        let mut m = 0.0_f64;
        for b in 0..self.num_blocks() {
            let r = self.block_range(b);
            let d: f64 = x[r.clone()]
                .iter()
                .zip(&y[r])
                .map(|(a, c)| (a - c) * (a - c))
                .sum();
            m = m.max(d.sqrt() / self.u[b]);
        }
        m
    }

    /// Weighted norm of a single block of `x`.
    ///
    /// # Panics
    /// Panics on block index or dimension mismatch.
    pub fn block_norm(&self, b: usize, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim(), "BlockWeightedMaxNorm::block_norm: dim");
        let r = self.block_range(b);
        crate::vecops::norm2(&x[r]) / self.u[b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_matches_norm_inf() {
        let n = WeightedMaxNorm::uniform(3);
        assert_eq!(n.eval(&[1.0, -4.0, 2.0]), 4.0);
    }

    #[test]
    fn weights_rescale_components() {
        let n = WeightedMaxNorm::new(vec![1.0, 10.0]).unwrap();
        // |−4|/10 = 0.4 < |1|/1.
        assert_eq!(n.eval(&[1.0, -4.0]), 1.0);
        assert_eq!(n.argmax(&[1.0, -4.0]), Some((0, 1.0)));
    }

    #[test]
    fn dist_is_norm_of_difference() {
        let n = WeightedMaxNorm::new(vec![2.0, 1.0]).unwrap();
        let x = [4.0, 1.0];
        let y = [0.0, 0.0];
        assert_eq!(n.dist(&x, &y), n.eval(&x));
    }

    #[test]
    fn rejects_nonpositive_weights() {
        assert!(WeightedMaxNorm::new(vec![1.0, 0.0]).is_err());
        assert!(WeightedMaxNorm::new(vec![-1.0]).is_err());
        assert!(WeightedMaxNorm::new(vec![f64::NAN]).is_err());
        assert!(WeightedMaxNorm::new(vec![]).is_err());
    }

    #[test]
    fn triangle_inequality_spot_check() {
        let n = WeightedMaxNorm::new(vec![1.0, 3.0, 0.5]).unwrap();
        let x = [1.0, -2.0, 0.25];
        let y = [0.5, 4.0, -1.0];
        let sum: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        assert!(n.eval(&sum) <= n.eval(&x) + n.eval(&y) + 1e-15);
    }

    #[test]
    fn component_matches_eval_for_basis_vectors() {
        let n = WeightedMaxNorm::new(vec![2.0, 5.0]).unwrap();
        assert_eq!(n.component(1, -10.0), 2.0);
        assert_eq!(n.eval(&[0.0, -10.0]), 2.0);
    }

    #[test]
    fn block_norm_uniform_partition() {
        let b = BlockWeightedMaxNorm::uniform_partition(5, 2).unwrap();
        assert_eq!(b.num_blocks(), 2);
        assert_eq!(b.dim(), 5);
        assert_eq!(b.block_range(0), 0..3);
        assert_eq!(b.block_range(1), 3..5);
    }

    #[test]
    fn block_of_locates_components() {
        let b = BlockWeightedMaxNorm::new(&[2, 3, 1], vec![1.0; 3]).unwrap();
        assert_eq!(b.block_of(0), 0);
        assert_eq!(b.block_of(1), 0);
        assert_eq!(b.block_of(2), 1);
        assert_eq!(b.block_of(4), 1);
        assert_eq!(b.block_of(5), 2);
    }

    #[test]
    fn block_eval_is_max_of_block_euclidean_norms() {
        let b = BlockWeightedMaxNorm::new(&[2, 2], vec![1.0, 2.0]).unwrap();
        // block 0: ‖(3,4)‖₂ = 5; block 1: ‖(0,8)‖₂/2 = 4.
        assert!((b.eval(&[3.0, 4.0, 0.0, 8.0]) - 5.0).abs() < 1e-15);
        assert!((b.block_norm(1, &[3.0, 4.0, 0.0, 8.0]) - 4.0).abs() < 1e-15);
    }

    #[test]
    fn block_dist_matches_eval_of_difference() {
        let b = BlockWeightedMaxNorm::new(&[1, 2], vec![1.0, 1.0]).unwrap();
        let x = [1.0, 2.0, 3.0];
        let y = [0.0, 0.0, 0.0];
        assert!((b.dist(&x, &y) - b.eval(&x)).abs() < 1e-15);
    }

    #[test]
    fn block_rejects_bad_input() {
        assert!(BlockWeightedMaxNorm::new(&[], vec![]).is_err());
        assert!(BlockWeightedMaxNorm::new(&[1, 0], vec![1.0, 1.0]).is_err());
        assert!(BlockWeightedMaxNorm::new(&[1], vec![1.0, 2.0]).is_err());
        assert!(BlockWeightedMaxNorm::new(&[1], vec![-1.0]).is_err());
        assert!(BlockWeightedMaxNorm::uniform_partition(3, 0).is_err());
        assert!(BlockWeightedMaxNorm::uniform_partition(3, 4).is_err());
    }

    #[test]
    fn scalar_blocks_reduce_to_weighted_max_norm() {
        let w = vec![1.0, 2.0, 4.0];
        let b = BlockWeightedMaxNorm::new(&[1, 1, 1], w.clone()).unwrap();
        let s = WeightedMaxNorm::new(w).unwrap();
        let x = [3.0, -8.0, 4.0];
        assert!((b.eval(&x) - s.eval(&x)).abs() < 1e-15);
    }
}
