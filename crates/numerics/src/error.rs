//! Error type for numerical routines.

use std::fmt;

/// Errors produced by numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericsError {
    /// Two operands have incompatible dimensions.
    DimensionMismatch {
        /// Dimension expected by the operation.
        expected: usize,
        /// Dimension actually supplied.
        actual: usize,
        /// Human-readable context (operation name).
        context: &'static str,
    },
    /// A matrix that must be symmetric positive definite is not.
    NotPositiveDefinite {
        /// Index of the pivot that failed.
        pivot: usize,
        /// Value of the failing pivot.
        value: f64,
    },
    /// A routine received an empty input where data is required.
    Empty {
        /// Human-readable context (operation name).
        context: &'static str,
    },
    /// An input parameter is outside its admissible range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Explanation of the violated constraint.
        message: String,
    },
    /// An iterative reference solver failed to reach its tolerance.
    DidNotConverge {
        /// Number of iterations performed.
        iterations: usize,
        /// Residual at the last iterate.
        residual: f64,
    },
}

impl fmt::Display for NumericsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericsError::DimensionMismatch {
                expected,
                actual,
                context,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, got {actual}"
            ),
            NumericsError::NotPositiveDefinite { pivot, value } => write!(
                f,
                "matrix is not positive definite (pivot {pivot} = {value:.3e})"
            ),
            NumericsError::Empty { context } => write!(f, "empty input in {context}"),
            NumericsError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            NumericsError::DidNotConverge {
                iterations,
                residual,
            } => write!(
                f,
                "iterative solver did not converge after {iterations} iterations \
                 (residual {residual:.3e})"
            ),
        }
    }
}

impl std::error::Error for NumericsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = NumericsError::DimensionMismatch {
            expected: 3,
            actual: 5,
            context: "dot",
        };
        assert_eq!(
            e.to_string(),
            "dimension mismatch in dot: expected 3, got 5"
        );
    }

    #[test]
    fn display_not_positive_definite() {
        let e = NumericsError::NotPositiveDefinite {
            pivot: 2,
            value: -1.0,
        };
        assert!(e.to_string().contains("pivot 2"));
    }

    #[test]
    fn display_did_not_converge() {
        let e = NumericsError::DidNotConverge {
            iterations: 10,
            residual: 0.5,
        };
        assert!(e.to_string().contains("10 iterations"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<NumericsError>();
    }
}
