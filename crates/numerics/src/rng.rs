//! Deterministic RNG plumbing.
//!
//! Every stochastic piece of the workspace (schedule generators, problem
//! instances, virtual network delays) takes an explicit `u64` seed and
//! derives a [`StdRng`] through these helpers, so each experiment is exactly
//! reproducible and sub-streams are decorrelated by construction.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Creates a seeded RNG.
#[inline]
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a decorrelated child seed from a base seed and a stream index
/// (SplitMix64 finaliser — the same mixer `StdRng::seed_from_u64` uses
/// internally, applied to the combined word).
#[inline]
pub fn child_seed(base: u64, stream: u64) -> u64 {
    let mut z = base.wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Vector of `n` i.i.d. uniform samples in `[lo, hi)`.
///
/// # Panics
/// Panics if `lo >= hi`.
pub fn uniform_vec(r: &mut StdRng, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    assert!(lo < hi, "uniform_vec: empty range");
    (0..n).map(|_| r.random_range(lo..hi)).collect()
}

/// Vector of `n` i.i.d. standard normal samples (Box–Muller; no external
/// distribution crate needed).
pub fn normal_vec(r: &mut StdRng, n: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let u1: f64 = r.random_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = r.random_range(0.0..1.0);
        let rad = (-2.0 * u1.ln()).sqrt();
        let ang = 2.0 * std::f64::consts::PI * u2;
        out.push(rad * ang.cos());
        if out.len() < n {
            out.push(rad * ang.sin());
        }
    }
    out
}

/// One standard normal sample.
pub fn normal(r: &mut StdRng) -> f64 {
    let u1: f64 = r.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = r.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Pareto-distributed sample with scale `xm > 0` and shape `alpha > 0`
/// (heavy-tailed delays: infinite variance for `alpha ≤ 2`).
///
/// # Panics
/// Panics on nonpositive parameters.
pub fn pareto(r: &mut StdRng, xm: f64, alpha: f64) -> f64 {
    assert!(xm > 0.0 && alpha > 0.0, "pareto: nonpositive parameter");
    let u: f64 = r.random_range(f64::MIN_POSITIVE..1.0);
    xm / u.powf(1.0 / alpha)
}

/// In-place Fisher–Yates shuffle.
pub fn shuffle<T>(r: &mut StdRng, xs: &mut [T]) {
    for i in (1..xs.len()).rev() {
        let j = r.random_range(0..=i);
        xs.swap(i, j);
    }
}

/// Samples `k` distinct indices from `0..n` (partial Fisher–Yates on an
/// index buffer).
///
/// # Panics
/// Panics if `k > n`.
pub fn sample_indices(r: &mut StdRng, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "sample_indices: k > n");
    // For small k relative to n, rejection sampling would be cheaper, but
    // the schedule generators call this with k ~ n/2; the O(n) buffer is
    // reused rarely enough not to matter.
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = r.random_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = rng(42);
        let mut b = rng(42);
        for _ in 0..10 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = rng(1);
        let mut b = rng(2);
        let va: Vec<u64> = (0..4).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn child_seed_decorrelates_streams() {
        let s0 = child_seed(7, 0);
        let s1 = child_seed(7, 1);
        assert_ne!(s0, s1);
        // And is itself deterministic.
        assert_eq!(child_seed(7, 1), s1);
    }

    #[test]
    fn uniform_vec_in_range() {
        let mut r = rng(3);
        let v = uniform_vec(&mut r, 1000, -2.0, 5.0);
        assert_eq!(v.len(), 1000);
        assert!(v.iter().all(|&x| (-2.0..5.0).contains(&x)));
        // Mean near midpoint 1.5.
        let mean = v.iter().sum::<f64>() / 1000.0;
        assert!((mean - 1.5).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn normal_vec_moments() {
        let mut r = rng(4);
        let v = normal_vec(&mut r, 20_000);
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn normal_vec_odd_length() {
        let mut r = rng(5);
        assert_eq!(normal_vec(&mut r, 7).len(), 7);
    }

    #[test]
    fn pareto_exceeds_scale() {
        let mut r = rng(6);
        for _ in 0..100 {
            assert!(pareto(&mut r, 2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        // With alpha = 1.1 the sample max over 10k draws should exceed the
        // scale by a large factor with overwhelming probability.
        let mut r = rng(7);
        let max = (0..10_000)
            .map(|_| pareto(&mut r, 1.0, 1.1))
            .fold(0.0_f64, f64::max);
        assert!(max > 50.0, "max {max}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = rng(8);
        let mut xs: Vec<usize> = (0..50).collect();
        shuffle(&mut r, &mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>()); // astronomically unlikely
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut r = rng(9);
        for _ in 0..20 {
            let s = sample_indices(&mut r, 10, 4);
            assert_eq!(s.len(), 4);
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 4);
            assert!(s.iter().all(|&i| i < 10));
        }
    }

    #[test]
    fn sample_indices_full_draw() {
        let mut r = rng(10);
        let mut s = sample_indices(&mut r, 5, 5);
        s.sort_unstable();
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
    }
}
