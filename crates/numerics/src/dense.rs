//! Row-major dense matrices.
//!
//! Used for small-to-medium design matrices (machine-learning problems) and
//! for computing *exact* reference solutions of quadratic problems via
//! Cholesky factorisation, against which the asynchronous engines measure
//! `‖x(j) − x*‖`.

use crate::error::NumericsError;
use crate::vecops;

/// A row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a matrix from row-major data.
    ///
    /// # Errors
    /// Returns [`NumericsError::DimensionMismatch`] when
    /// `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> crate::Result<Self> {
        if data.len() != rows * cols {
            return Err(NumericsError::DimensionMismatch {
                expected: rows * cols,
                actual: data.len(),
                context: "DenseMatrix::from_vec",
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "DenseMatrix::row: index");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    ///
    /// # Panics
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "DenseMatrix::row_mut: index");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// `out ← A x`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matvec(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec: x dimension");
        assert_eq!(out.len(), self.rows, "matvec: out dimension");
        for (r, o) in out.iter_mut().enumerate() {
            *o = vecops::dot(self.row(r), x);
        }
    }

    /// `out ← Aᵀ x`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matvec_transpose(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "matvec_transpose: x dimension");
        assert_eq!(out.len(), self.cols, "matvec_transpose: out dimension");
        out.fill(0.0);
        for (r, &xr) in x.iter().enumerate() {
            vecops::axpy(xr, self.row(r), out);
        }
    }

    /// Gram matrix `AᵀA / scale` (use `scale = 1.0` for the plain Gram
    /// matrix, `scale = m as f64` for the averaged empirical version).
    ///
    /// # Panics
    /// Panics if `scale` is not strictly positive.
    pub fn gram(&self, scale: f64) -> DenseMatrix {
        assert!(scale > 0.0, "gram: scale must be positive");
        let n = self.cols;
        let mut g = DenseMatrix::zeros(n, n);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..n {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                for (jj, &rj) in row.iter().enumerate() {
                    g.data[i * n + jj] += ri * rj;
                }
            }
        }
        for v in &mut g.data {
            *v /= scale;
        }
        g
    }

    /// Symmetry check up to tolerance `tol` (absolute).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Cholesky factorisation `A = L Lᵀ` of a symmetric positive-definite
    /// matrix; returns the lower factor.
    ///
    /// # Errors
    /// Returns [`NumericsError::NotPositiveDefinite`] when a pivot is
    /// non-positive, and a dimension error for non-square input.
    pub fn cholesky(&self) -> crate::Result<DenseMatrix> {
        if self.rows != self.cols {
            return Err(NumericsError::DimensionMismatch {
                expected: self.rows,
                actual: self.cols,
                context: "cholesky (square)",
            });
        }
        let n = self.rows;
        let mut l = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = self[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if s <= 0.0 {
                        return Err(NumericsError::NotPositiveDefinite { pivot: i, value: s });
                    }
                    l[(i, j)] = s.sqrt();
                } else {
                    l[(i, j)] = s / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// Solves `A x = b` for symmetric positive-definite `A` via Cholesky.
    ///
    /// # Errors
    /// Propagates factorisation errors; checks `b` dimension.
    pub fn solve_spd(&self, b: &[f64]) -> crate::Result<Vec<f64>> {
        if b.len() != self.rows {
            return Err(NumericsError::DimensionMismatch {
                expected: self.rows,
                actual: b.len(),
                context: "solve_spd (rhs)",
            });
        }
        let l = self.cholesky()?;
        let n = self.rows;
        // Forward solve L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= l[(i, k)] * y[k];
            }
            y[i] = s / l[(i, i)];
        }
        // Backward solve Lᵀ x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= l[(k, i)] * x[k];
            }
            x[i] = s / l[(i, i)];
        }
        Ok(x)
    }

    /// Largest eigenvalue of a symmetric matrix by power iteration.
    ///
    /// Runs until the Rayleigh quotient stabilises to `tol` or `max_iter`
    /// iterations. Good enough for Lipschitz-constant estimation; not a
    /// general eigensolver.
    pub fn spectral_norm_symmetric(&self, tol: f64, max_iter: usize) -> f64 {
        assert_eq!(self.rows, self.cols, "spectral_norm_symmetric: square");
        let n = self.rows;
        if n == 0 {
            return 0.0;
        }
        // Deterministic start vector with components of varying sign so we
        // do not accidentally start orthogonal to the top eigenvector.
        let mut v: Vec<f64> = (0..n)
            .map(|i| 1.0 + 0.5 * ((i % 7) as f64) - 0.25 * ((i % 3) as f64))
            .collect();
        let mut av = vec![0.0; n];
        let mut lambda = 0.0_f64;
        for _ in 0..max_iter {
            let nv = vecops::norm2(&v);
            if nv == 0.0 {
                return 0.0;
            }
            vecops::scale(&mut v, 1.0 / nv);
            self.matvec(&v, &mut av);
            let new_lambda = vecops::dot(&v, &av);
            let done = (new_lambda - lambda).abs() <= tol * new_lambda.abs().max(1.0);
            lambda = new_lambda;
            std::mem::swap(&mut v, &mut av);
            if done {
                break;
            }
        }
        lambda.abs()
    }

    /// Row-sum infinity norm `‖A‖_∞ = max_i Σ_j |a_ij|`.
    pub fn norm_inf_induced(&self) -> f64 {
        (0..self.rows)
            .map(|r| self.row(r).iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "DenseMatrix index");
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "DenseMatrix index");
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> DenseMatrix {
        // Diagonally dominant symmetric -> SPD.
        DenseMatrix::from_vec(3, 3, vec![4.0, 1.0, 0.5, 1.0, 5.0, -1.0, 0.5, -1.0, 6.0]).unwrap()
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn identity_matvec_is_identity() {
        let a = DenseMatrix::identity(3);
        let x = [1.0, -2.0, 3.0];
        let mut out = [0.0; 3];
        a.matvec(&x, &mut out);
        assert_eq!(out, x);
    }

    #[test]
    fn matvec_hand_example() {
        let a = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let mut out = [0.0; 2];
        a.matvec(&[1.0, 1.0, 1.0], &mut out);
        assert_eq!(out, [6.0, 15.0]);
    }

    #[test]
    fn matvec_transpose_consistent_with_matvec() {
        let a = DenseMatrix::from_fn(3, 2, |r, c| (r * 2 + c) as f64);
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, 5.0];
        // <Aᵀx, y> must equal <x, Ay>.
        let mut atx = [0.0; 2];
        a.matvec_transpose(&x, &mut atx);
        let mut ay = [0.0; 3];
        a.matvec(&y, &mut ay);
        assert!((vecops::dot(&atx, &y) - vecops::dot(&x, &ay)).abs() < 1e-12);
    }

    #[test]
    fn gram_is_symmetric_psd() {
        let a = DenseMatrix::from_fn(4, 3, |r, c| ((r + 1) * (c + 2)) as f64 / 3.0);
        let g = a.gram(4.0);
        assert!(g.is_symmetric(1e-12));
        // xᵀGx ≥ 0 for a couple of vectors.
        for x in [[1.0, 0.0, -1.0], [0.3, -2.0, 0.7]] {
            let mut gx = [0.0; 3];
            g.matvec(&x, &mut gx);
            assert!(vecops::dot(&x, &gx) >= -1e-12);
        }
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd3();
        let l = a.cholesky().unwrap();
        // L Lᵀ == A.
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += l[(i, k)] * l[(j, k)];
                }
                assert!((s - a[(i, j)]).abs() < 1e-12, "entry ({i},{j})");
            }
        }
        // Strictly lower-left structure: upper part zero.
        assert_eq!(l[(0, 1)], 0.0);
        assert_eq!(l[(0, 2)], 0.0);
        assert_eq!(l[(1, 2)], 0.0);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        match a.cholesky() {
            Err(NumericsError::NotPositiveDefinite { .. }) => {}
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }
    }

    #[test]
    fn solve_spd_solves() {
        let a = spd3();
        let x_true = [1.0, -2.0, 0.5];
        let mut b = [0.0; 3];
        a.matvec(&x_true, &mut b);
        let x = a.solve_spd(&b).unwrap();
        assert!(vecops::max_abs_diff(&x, &x_true) < 1e-12);
    }

    #[test]
    fn solve_spd_checks_rhs_len() {
        assert!(spd3().solve_spd(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn spectral_norm_of_diagonal() {
        let mut a = DenseMatrix::zeros(3, 3);
        a[(0, 0)] = 1.0;
        a[(1, 1)] = -7.0;
        a[(2, 2)] = 3.0;
        let s = a.spectral_norm_symmetric(1e-12, 10_000);
        assert!((s - 7.0).abs() < 1e-6, "got {s}");
    }

    #[test]
    fn norm_inf_induced_hand_example() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, -2.0, 3.0, 0.5]).unwrap();
        assert_eq!(a.norm_inf_induced(), 3.5);
    }

    #[test]
    fn is_symmetric_detects_asymmetry() {
        let mut a = spd3();
        assert!(a.is_symmetric(1e-14));
        a[(0, 1)] += 1e-3;
        assert!(!a.is_symmetric(1e-6));
        assert!(!DenseMatrix::zeros(2, 3).is_symmetric(1.0));
    }

    #[test]
    fn index_roundtrip() {
        let mut a = DenseMatrix::zeros(2, 2);
        a[(1, 0)] = 42.0;
        assert_eq!(a[(1, 0)], 42.0);
        assert_eq!(a.row(1)[0], 42.0);
    }
}
