//! # asynciter-numerics
//!
//! Self-contained numerical substrate for the `asynciter` workspace: dense
//! and CSR sparse matrices, vector kernels, the *weighted maximum norm*
//! `‖x‖_u = max_i |x_i| / u_i` that underpins the convergence theory of
//! asynchronous iterations (El-Baz, IPPS 2022, Eq. (3) and Theorem 1),
//! deterministic RNG plumbing, and small statistics helpers used by the
//! experiment harness (growth-rate fits, percentiles).
//!
//! Everything here is dependency-light by design: the convergence phenomena
//! studied by the paper live in schedules and operators, not in BLAS, so a
//! compact, well-tested kernel set is the right substrate.
//!
//! ## Layout
//!
//! - [`vecops`] — allocation-free vector kernels (`axpy`, `dot`, norms, …).
//! - [`norm`] — weighted maximum norms and block norms (paper Eq. (3)).
//! - [`dense`] — row-major dense matrices with Cholesky solves for exact
//!   reference solutions of small quadratic problems.
//! - [`sparse`] — CSR matrices, 5-point Laplacians, tridiagonal systems and
//!   diagonal-dominance diagnostics.
//! - [`rng`] — seeded [`rand::rngs::StdRng`] constructors and samplers.
//! - [`stats`] — means, percentiles and least-squares growth-rate fits.

#![deny(missing_docs)]
#![warn(clippy::all)]
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod dense;
pub mod error;
pub mod norm;
pub mod rng;
pub mod sparse;
pub mod stats;
pub mod vecops;

pub use dense::DenseMatrix;
pub use error::NumericsError;
pub use norm::{BlockWeightedMaxNorm, WeightedMaxNorm};
pub use sparse::CsrMatrix;

/// Default tolerance used by reference solvers when computing "exact"
/// fixed points / minimisers against which experiments measure error.
pub const REFERENCE_TOL: f64 = 1e-13;

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, NumericsError>;
