//! Allocation-free vector kernels.
//!
//! All functions operate on slices and panic on dimension mismatch (these
//! are programmer errors on hot paths; checked variants are not worth the
//! branch in inner loops). Callers that need fallibility should validate
//! dimensions once at construction time.

/// `y ← a*x + y`.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// Dot product `xᵀy`.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Squared Euclidean norm `‖x‖₂²`.
#[inline]
pub fn norm2_sq(x: &[f64]) -> f64 {
    dot(x, x)
}

/// Infinity norm `‖x‖_∞ = max_i |x_i|`. Returns 0 for empty input.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
}

/// `‖x − y‖_∞`.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn max_abs_diff(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "max_abs_diff: length mismatch");
    x.iter()
        .zip(y)
        .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
}

/// `‖x − y‖₂²`.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn dist2_sq(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dist2_sq: length mismatch");
    x.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum()
}

/// `‖x − y‖₂`.
#[inline]
pub fn dist2(x: &[f64], y: &[f64]) -> f64 {
    dist2_sq(x, y).sqrt()
}

/// `out ← x − y`.
///
/// # Panics
/// Panics on any length mismatch.
#[inline]
pub fn sub(x: &[f64], y: &[f64], out: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    assert_eq!(x.len(), out.len(), "sub: output length mismatch");
    for ((o, a), b) in out.iter_mut().zip(x).zip(y) {
        *o = a - b;
    }
}

/// `x ← c*x`.
#[inline]
pub fn scale(x: &mut [f64], c: f64) {
    for v in x {
        *v *= c;
    }
}

/// Copies `src` into `dst`.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn copy(src: &[f64], dst: &mut [f64]) {
    dst.copy_from_slice(src);
}

/// Sum of all entries.
#[inline]
pub fn sum(x: &[f64]) -> f64 {
    x.iter().sum()
}

/// Index and value of the entry with the largest absolute value.
/// Returns `None` for empty input.
pub fn argmax_abs(x: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in x.iter().enumerate() {
        match best {
            Some((_, b)) if v.abs() <= b.abs() => {}
            _ => best = Some((i, v)),
        }
    }
    best
}

/// Componentwise clamp of `x` into `[lo_i, hi_i]`.
///
/// # Panics
/// Panics on any length mismatch.
pub fn clamp_into(x: &mut [f64], lo: &[f64], hi: &[f64]) {
    assert_eq!(x.len(), lo.len(), "clamp_into: lo length mismatch");
    assert_eq!(x.len(), hi.len(), "clamp_into: hi length mismatch");
    for ((v, &l), &h) in x.iter_mut().zip(lo).zip(hi) {
        *v = v.clamp(l, h);
    }
}

/// True when every entry of `x` is finite.
#[inline]
pub fn all_finite(x: &[f64]) -> bool {
    x.iter().all(|v| v.is_finite())
}

/// Linear interpolation `out ← (1−t)·x + t·y`.
///
/// # Panics
/// Panics on any length mismatch.
pub fn lerp(x: &[f64], y: &[f64], t: f64, out: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "lerp: length mismatch");
    assert_eq!(x.len(), out.len(), "lerp: output length mismatch");
    for ((o, a), b) in out.iter_mut().zip(x).zip(y) {
        *o = (1.0 - t) * a + t * b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn dot_matches_hand_computation() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn norm2_is_pythagorean() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn norm_inf_ignores_sign() {
        assert_eq!(norm_inf(&[1.0, -7.0, 3.0]), 7.0);
    }

    #[test]
    fn norm_inf_empty_is_zero() {
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn max_abs_diff_basic() {
        assert_eq!(max_abs_diff(&[1.0, 5.0], &[2.0, 2.0]), 3.0);
    }

    #[test]
    fn sub_into_out() {
        let mut out = [0.0; 2];
        sub(&[5.0, 1.0], &[2.0, 3.0], &mut out);
        assert_eq!(out, [3.0, -2.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = [1.0, -2.0];
        scale(&mut x, -3.0);
        assert_eq!(x, [-3.0, 6.0]);
    }

    #[test]
    fn argmax_abs_picks_largest_magnitude() {
        assert_eq!(argmax_abs(&[1.0, -9.0, 3.0]), Some((1, -9.0)));
        assert_eq!(argmax_abs(&[]), None);
    }

    #[test]
    fn argmax_abs_prefers_first_on_tie() {
        assert_eq!(argmax_abs(&[2.0, -2.0]), Some((0, 2.0)));
    }

    #[test]
    fn clamp_into_projects() {
        let mut x = [-1.0, 0.5, 9.0];
        clamp_into(&mut x, &[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0]);
        assert_eq!(x, [0.0, 0.5, 1.0]);
    }

    #[test]
    fn all_finite_detects_nan_and_inf() {
        assert!(all_finite(&[1.0, 2.0]));
        assert!(!all_finite(&[1.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
    }

    #[test]
    fn lerp_endpoints() {
        let x = [0.0, 10.0];
        let y = [1.0, 20.0];
        let mut out = [0.0; 2];
        lerp(&x, &y, 0.0, &mut out);
        assert_eq!(out, x);
        lerp(&x, &y, 1.0, &mut out);
        assert_eq!(out, y);
        lerp(&x, &y, 0.5, &mut out);
        assert_eq!(out, [0.5, 15.0]);
    }

    #[test]
    #[should_panic(expected = "dot: length mismatch")]
    fn dot_panics_on_mismatch() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn dist2_matches_norm_of_difference() {
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, 6.0, 3.0];
        assert!((dist2(&x, &y) - 5.0).abs() < 1e-15);
        assert!((dist2_sq(&x, &y) - 25.0).abs() < 1e-12);
    }
}
