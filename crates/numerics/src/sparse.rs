//! Compressed sparse row (CSR) matrices and structured-problem stencils.
//!
//! The asynchronous relaxation experiments operate on large sparse systems
//! (2-D Laplacians for the obstacle problem, graph Laplacians for network
//! flow duals), so CSR with row-oriented access is the natural layout: an
//! update of component `i` reads exactly row `i`.

use crate::error::NumericsError;

/// A CSR sparse matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row pointer: row `r` occupies `indptr[r]..indptr[r+1]` in
    /// `indices`/`values`.
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from (row, col, value) triplets; duplicate
    /// entries are summed, explicit zeros retained.
    ///
    /// # Errors
    /// Returns an error for out-of-range indices.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> crate::Result<Self> {
        for &(r, c, _) in triplets {
            if r >= rows || c >= cols {
                return Err(NumericsError::InvalidParameter {
                    name: "triplets",
                    message: format!("entry ({r},{c}) outside {rows}x{cols}"),
                });
            }
        }
        // Count entries per row after duplicate merging: merge via sort.
        let mut t: Vec<(usize, usize, f64)> = triplets.to_vec();
        t.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(t.len());
        for (r, c, v) in t {
            match merged.last_mut() {
                Some((lr, lc, lv)) if *lr == r && *lc == c => *lv += v,
                _ => merged.push((r, c, v)),
            }
        }
        let mut indptr = vec![0usize; rows + 1];
        for &(r, _, _) in &merged {
            indptr[r + 1] += 1;
        }
        for r in 0..rows {
            indptr[r + 1] += indptr[r];
        }
        let indices = merged.iter().map(|&(_, c, _)| c).collect();
        let values = merged.iter().map(|&(_, _, v)| v).collect();
        Ok(Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        })
    }

    /// Builds a CSR matrix directly from its raw arrays (the layout
    /// interchange constructors of other sparse libraries produce).
    ///
    /// Validates the structural invariants — `indptr` has length
    /// `rows + 1`, starts at 0, is non-decreasing and ends at
    /// `indices.len() == values.len()`, and every column index is in
    /// range — but **not** per-row column ordering: external CSR data
    /// may carry unsorted or duplicate columns, which this type's
    /// `get`/`diagonal` accessors would silently misread. Consumers that
    /// rely on ordered rows must check [`CsrMatrix::rows_sorted_strictly`]
    /// (the certified operators do, at construction).
    ///
    /// # Errors
    /// Structural violations, with the offending position.
    pub fn from_raw_parts(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f64>,
    ) -> crate::Result<Self> {
        if indptr.len() != rows + 1 || indptr.first() != Some(&0) {
            return Err(NumericsError::InvalidParameter {
                name: "indptr",
                message: format!(
                    "need indptr of length rows + 1 starting at 0; got length {} for {rows} rows",
                    indptr.len()
                ),
            });
        }
        if indices.len() != values.len() || indptr[rows] != indices.len() {
            return Err(NumericsError::InvalidParameter {
                name: "indices/values",
                message: format!(
                    "lengths must match and equal indptr[rows]: {} indices, {} values, \
                     indptr end {}",
                    indices.len(),
                    values.len(),
                    indptr[rows]
                ),
            });
        }
        if let Some(r) = (0..rows).find(|&r| indptr[r] > indptr[r + 1]) {
            return Err(NumericsError::InvalidParameter {
                name: "indptr",
                message: format!("indptr decreases at row {r}"),
            });
        }
        if let Some((k, &c)) = indices.iter().enumerate().find(|(_, &c)| c >= cols) {
            return Err(NumericsError::InvalidParameter {
                name: "indices",
                message: format!("column {c} at position {k} outside 0..{cols}"),
            });
        }
        Ok(Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        })
    }

    /// True when every row's column indices are strictly increasing —
    /// i.e. sorted with no duplicates, the invariant `get`, `diagonal`
    /// and the row-oriented operators assume. Always true for matrices
    /// built by [`CsrMatrix::from_triplets`] and the stencil
    /// constructors; external data via [`CsrMatrix::from_raw_parts`]
    /// must be checked.
    pub fn rows_sorted_strictly(&self) -> bool {
        (0..self.rows).all(|r| {
            let (idx, _) = self.row(r);
            idx.windows(2).all(|w| w[0] < w[1])
        })
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        Self {
            rows: n,
            cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The (indices, values) pairs of row `r`.
    ///
    /// # Panics
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        assert!(r < self.rows, "CsrMatrix::row: index");
        let lo = self.indptr[r];
        let hi = self.indptr[r + 1];
        (&self.indices[lo..hi], &self.values[lo..hi])
    }

    /// Value at `(r, c)`, zero when not stored.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let (idx, vals) = self.row(r);
        match idx.binary_search(&c) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// `out ← A x`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matvec(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "CsrMatrix::matvec: x dimension");
        assert_eq!(out.len(), self.rows, "CsrMatrix::matvec: out dimension");
        for (r, o) in out.iter_mut().enumerate() {
            let (idx, vals) = {
                let lo = self.indptr[r];
                let hi = self.indptr[r + 1];
                (&self.indices[lo..hi], &self.values[lo..hi])
            };
            let mut s = 0.0;
            for (&c, &v) in idx.iter().zip(vals) {
                s += v * x[c];
            }
            *o = s;
        }
    }

    /// Dot product of row `r` with `x`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    #[inline]
    pub fn row_dot(&self, r: usize, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.cols, "CsrMatrix::row_dot: x dimension");
        let (idx, vals) = self.row(r);
        let mut s = 0.0;
        for (&c, &v) in idx.iter().zip(vals) {
            s += v * x[c];
        }
        s
    }

    /// Dot product of row `r` with `x`, excluding the diagonal entry
    /// (used by Jacobi/relaxation updates `x_i ← (b_i − Σ_{j≠i} a_ij x_j)/a_ii`).
    #[inline]
    pub fn row_dot_offdiag(&self, r: usize, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.cols, "row_dot_offdiag: x dimension");
        let (idx, vals) = self.row(r);
        let mut s = 0.0;
        for (&c, &v) in idx.iter().zip(vals) {
            if c != r {
                s += v * x[c];
            }
        }
        s
    }

    /// Diagonal entries (zero where absent).
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// Σ_{j≠i} |a_ij| for every row: the off-diagonal absolute row sums
    /// used in diagonal-dominance and weighted-max-norm contraction bounds.
    pub fn offdiag_abs_row_sums(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|r| {
                let (idx, vals) = self.row(r);
                idx.iter()
                    .zip(vals)
                    .filter(|(&c, _)| c != r)
                    .map(|(_, &v)| v.abs())
                    .sum()
            })
            .collect()
    }

    /// Strict diagonal dominance margin `min_i (|a_ii| − Σ_{j≠i} |a_ij|)`;
    /// positive iff strictly diagonally dominant.
    pub fn diagonal_dominance_margin(&self) -> f64 {
        let diag = self.diagonal();
        let off = self.offdiag_abs_row_sums();
        diag.iter()
            .zip(&off)
            .map(|(d, o)| d.abs() - o)
            .fold(f64::INFINITY, f64::min)
    }

    /// True when the matrix is symmetric up to absolute tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            let (idx, vals) = self.row(r);
            for (&c, &v) in idx.iter().zip(vals) {
                if (v - self.get(c, r)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Dense copy (for small matrices / tests).
    pub fn to_dense(&self) -> crate::dense::DenseMatrix {
        let mut d = crate::dense::DenseMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let (idx, vals) = self.row(r);
            for (&c, &v) in idx.iter().zip(vals) {
                d[(r, c)] += v;
            }
        }
        d
    }
}

/// 5-point finite-difference Laplacian on an `nx × ny` grid with Dirichlet
/// boundary (matrix order `nx*ny`, grid spacing `h`): the operator
/// `(-Δ_h u)_{ij} = (4 u_{ij} − u_{i±1,j} − u_{i,j±1}) / h²`.
///
/// Row ordering is row-major in the grid: component `k = iy*nx + ix`.
///
/// # Panics
/// Panics when `nx == 0`, `ny == 0`, or `h <= 0`.
pub fn laplacian_2d(nx: usize, ny: usize, h: f64) -> CsrMatrix {
    assert!(nx > 0 && ny > 0, "laplacian_2d: empty grid");
    assert!(h > 0.0, "laplacian_2d: nonpositive spacing");
    let n = nx * ny;
    let inv_h2 = 1.0 / (h * h);
    let mut trip = Vec::with_capacity(5 * n);
    for iy in 0..ny {
        for ix in 0..nx {
            let k = iy * nx + ix;
            trip.push((k, k, 4.0 * inv_h2));
            if ix > 0 {
                trip.push((k, k - 1, -inv_h2));
            }
            if ix + 1 < nx {
                trip.push((k, k + 1, -inv_h2));
            }
            if iy > 0 {
                trip.push((k, k - nx, -inv_h2));
            }
            if iy + 1 < ny {
                trip.push((k, k + nx, -inv_h2));
            }
        }
    }
    CsrMatrix::from_triplets(n, n, &trip).expect("laplacian triplets in range")
}

/// Symmetric tridiagonal matrix with constant diagonal `d` and
/// off-diagonal `e`, order `n`.
///
/// # Panics
/// Panics when `n == 0`.
pub fn tridiagonal(n: usize, d: f64, e: f64) -> CsrMatrix {
    assert!(n > 0, "tridiagonal: order 0");
    let mut trip = Vec::with_capacity(3 * n);
    for i in 0..n {
        trip.push((i, i, d));
        if i > 0 {
            trip.push((i, i - 1, e));
        }
        if i + 1 < n {
            trip.push((i, i + 1, e));
        }
    }
    CsrMatrix::from_triplets(n, n, &trip).expect("tridiagonal triplets in range")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_triplets_merges_duplicates() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.0), (1, 1, 5.0)]).unwrap();
        assert_eq!(a.get(0, 0), 3.0);
        assert_eq!(a.get(1, 1), 5.0);
        assert_eq!(a.get(0, 1), 0.0);
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn from_triplets_rejects_out_of_range() {
        assert!(CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(2, 2, &[(0, 5, 1.0)]).is_err());
    }

    #[test]
    fn from_raw_parts_validates_structure_but_not_order() {
        // A valid sorted matrix round-trips.
        let a = CsrMatrix::from_raw_parts(2, 2, vec![0, 2, 3], vec![0, 1, 1], vec![2.0, -1.0, 3.0])
            .unwrap();
        assert_eq!(a.get(0, 1), -1.0);
        assert!(a.rows_sorted_strictly());
        // Structural violations are rejected.
        assert!(CsrMatrix::from_raw_parts(2, 2, vec![0, 2], vec![0, 1], vec![1.0, 1.0]).is_err());
        assert!(
            CsrMatrix::from_raw_parts(2, 2, vec![1, 2, 2], vec![0, 1], vec![1.0, 1.0]).is_err()
        );
        assert!(
            CsrMatrix::from_raw_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).is_err()
        );
        assert!(
            CsrMatrix::from_raw_parts(2, 2, vec![0, 1, 2], vec![0, 2], vec![1.0, 1.0]).is_err()
        );
        assert!(CsrMatrix::from_raw_parts(2, 2, vec![0, 1, 2], vec![0], vec![1.0]).is_err());
        // Duplicate and unsorted columns pass construction (external
        // data may be shaped that way) but are detectable.
        let dup = CsrMatrix::from_raw_parts(1, 2, vec![0, 3], vec![0, 0, 1], vec![1.0, 2.0, 0.5])
            .unwrap();
        assert!(!dup.rows_sorted_strictly());
        let unsorted =
            CsrMatrix::from_raw_parts(1, 2, vec![0, 2], vec![1, 0], vec![1.0, 2.0]).unwrap();
        assert!(!unsorted.rows_sorted_strictly());
        assert!(CsrMatrix::identity(3).rows_sorted_strictly());
        assert!(tridiagonal(4, 4.0, -1.0).rows_sorted_strictly());
    }

    #[test]
    fn identity_matvec() {
        let a = CsrMatrix::identity(3);
        let mut out = [0.0; 3];
        a.matvec(&[1.0, 2.0, 3.0], &mut out);
        assert_eq!(out, [1.0, 2.0, 3.0]);
    }

    #[test]
    fn matvec_matches_dense() {
        let a = CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 2.0),
                (0, 2, -1.0),
                (1, 1, 3.0),
                (2, 0, 0.5),
                (2, 2, 4.0),
            ],
        )
        .unwrap();
        let d = a.to_dense();
        let x = [1.0, -1.0, 2.0];
        let mut s_out = [0.0; 3];
        let mut d_out = [0.0; 3];
        a.matvec(&x, &mut s_out);
        d.matvec(&x, &mut d_out);
        assert_eq!(s_out, d_out);
    }

    #[test]
    fn row_dot_offdiag_skips_diagonal() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 10.0), (0, 1, 2.0)]).unwrap();
        assert_eq!(a.row_dot(0, &[1.0, 1.0]), 12.0);
        assert_eq!(a.row_dot_offdiag(0, &[1.0, 1.0]), 2.0);
    }

    #[test]
    fn diagonal_and_dominance() {
        let a = tridiagonal(4, 4.0, -1.0);
        assert_eq!(a.diagonal(), vec![4.0; 4]);
        // Interior rows have off-diag sum 2, end rows 1 → margin 2.
        assert_eq!(a.diagonal_dominance_margin(), 2.0);
    }

    #[test]
    fn laplacian_row_sums() {
        let a = laplacian_2d(3, 3, 1.0);
        assert_eq!(a.rows(), 9);
        // Centre node (1,1) -> k=4: full stencil.
        assert_eq!(a.get(4, 4), 4.0);
        assert_eq!(a.get(4, 3), -1.0);
        assert_eq!(a.get(4, 5), -1.0);
        assert_eq!(a.get(4, 1), -1.0);
        assert_eq!(a.get(4, 7), -1.0);
        // Corner node k=0 has only 2 neighbours: row sum = 4 - 2 = 2 > 0
        // (irreducible diagonal dominance from the boundary).
        let (idx, vals) = a.row(0);
        assert_eq!(idx.len(), 3);
        let s: f64 = vals.iter().sum();
        assert!((s - 2.0).abs() < 1e-14);
    }

    #[test]
    fn laplacian_is_symmetric() {
        let a = laplacian_2d(4, 3, 0.5);
        assert!(a.is_symmetric(1e-14));
    }

    #[test]
    fn laplacian_scales_with_h() {
        let a = laplacian_2d(3, 3, 0.5);
        assert_eq!(a.get(4, 4), 16.0); // 4 / h² with h = 1/2.
    }

    #[test]
    fn tridiagonal_structure() {
        let a = tridiagonal(3, 2.0, -1.0);
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(1, 0), -1.0);
        assert_eq!(a.get(0, 2), 0.0);
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn symmetric_detects_asymmetry() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0)]).unwrap();
        assert!(!a.is_symmetric(1e-14));
        let b = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        assert!(b.is_symmetric(1e-14));
        assert!(!CsrMatrix::from_triplets(2, 3, &[])
            .unwrap()
            .is_symmetric(1.0));
    }

    #[test]
    fn get_absent_is_zero() {
        let a = CsrMatrix::from_triplets(2, 2, &[]).unwrap();
        assert_eq!(a.get(1, 1), 0.0);
        assert_eq!(a.nnz(), 0);
    }
}
