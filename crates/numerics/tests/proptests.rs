//! Property-based tests for the numerics substrate.

use asynciter_numerics::{
    dense::DenseMatrix,
    norm::{BlockWeightedMaxNorm, WeightedMaxNorm},
    sparse::{tridiagonal, CsrMatrix},
    stats, vecops,
};
use proptest::prelude::*;

fn vec_strategy(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0..100.0f64, n)
}

fn weight_strategy(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.1..10.0f64, n)
}

proptest! {
    #[test]
    fn weighted_max_norm_is_a_norm(
        x in vec_strategy(8),
        y in vec_strategy(8),
        u in weight_strategy(8),
        c in -5.0..5.0f64,
    ) {
        let norm = WeightedMaxNorm::new(u).unwrap();
        let nx = norm.eval(&x);
        let ny = norm.eval(&y);
        // Nonnegativity.
        prop_assert!(nx >= 0.0);
        // Absolute homogeneity.
        let cx: Vec<f64> = x.iter().map(|v| c * v).collect();
        prop_assert!((norm.eval(&cx) - c.abs() * nx).abs() <= 1e-9 * (1.0 + nx));
        // Triangle inequality.
        let s: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        prop_assert!(norm.eval(&s) <= nx + ny + 1e-9);
    }

    #[test]
    fn weighted_max_norm_zero_iff_zero(u in weight_strategy(6)) {
        let norm = WeightedMaxNorm::new(u).unwrap();
        prop_assert_eq!(norm.eval(&[0.0; 6]), 0.0);
    }

    #[test]
    fn block_norm_dominated_by_scalar_norm_with_unit_weights(
        x in vec_strategy(12),
    ) {
        // With unit weights, max_b ‖block‖₂ ≥ max_i |x_i| (each component
        // sits inside some block) and ≤ √n · max_i |x_i|.
        let b = BlockWeightedMaxNorm::uniform_partition(12, 4).unwrap();
        let bn = b.eval(&x);
        let inf = vecops::norm_inf(&x);
        prop_assert!(bn + 1e-12 >= inf);
        prop_assert!(bn <= (12.0f64).sqrt() * inf + 1e-12);
    }

    #[test]
    fn cholesky_solve_roundtrip(
        diag in prop::collection::vec(1.0..10.0f64, 5),
        x_true in vec_strategy(5),
    ) {
        // Random SPD: tridiagonal-style dominance via diag + small coupling.
        let n = 5usize;
        let mut a = DenseMatrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = diag[i] + 2.0;
            if i + 1 < n {
                a[(i, i + 1)] = 0.5;
                a[(i + 1, i)] = 0.5;
            }
        }
        let mut b = vec![0.0; n];
        a.matvec(&x_true, &mut b);
        let x = a.solve_spd(&b).unwrap();
        prop_assert!(vecops::max_abs_diff(&x, &x_true) < 1e-8);
    }

    #[test]
    fn csr_matvec_matches_dense(
        entries in prop::collection::vec((0usize..6, 0usize..6, -10.0..10.0f64), 0..20),
        x in vec_strategy(6),
    ) {
        let a = CsrMatrix::from_triplets(6, 6, &entries).unwrap();
        let d = a.to_dense();
        let mut ys = vec![0.0; 6];
        let mut yd = vec![0.0; 6];
        a.matvec(&x, &mut ys);
        d.matvec(&x, &mut yd);
        prop_assert!(vecops::max_abs_diff(&ys, &yd) < 1e-9);
    }

    #[test]
    fn csr_row_dot_consistent(
        entries in prop::collection::vec((0usize..5, 0usize..5, -10.0..10.0f64), 0..15),
        x in vec_strategy(5),
    ) {
        let a = CsrMatrix::from_triplets(5, 5, &entries).unwrap();
        for r in 0..5 {
            let full = a.row_dot(r, &x);
            let off = a.row_dot_offdiag(r, &x);
            prop_assert!((full - (off + a.get(r, r) * x[r])).abs() < 1e-9);
        }
    }

    #[test]
    fn tridiagonal_dominance_margin(n in 2usize..20, d in 1.0..10.0f64, e in 0.0..0.4f64) {
        // |d| - 2e > 0 ensured by ranges (d ≥ 1, 2e < 0.8).
        let a = tridiagonal(n, d, -e);
        prop_assert!(a.diagonal_dominance_margin() >= d - 2.0 * e - 1e-12);
        prop_assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn percentile_within_range(xs in prop::collection::vec(-50.0..50.0f64, 1..40), q in 0.0..100.0f64) {
        let p = stats::percentile(&xs, q).unwrap();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p >= lo - 1e-12 && p <= hi + 1e-12);
    }

    #[test]
    fn power_law_fit_recovers_exponent(c in 0.5..5.0f64, p in 0.2..2.0f64) {
        let x: Vec<f64> = (1..60).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| c * v.powf(p)).collect();
        let (cf, pf, r2) = stats::fit_power_law(&x, &y).unwrap();
        prop_assert!((cf - c).abs() < 1e-6 * c.max(1.0));
        prop_assert!((pf - p).abs() < 1e-8);
        prop_assert!(r2 > 0.999_999);
    }

    #[test]
    fn spectral_norm_bounded_by_inf_norm(
        diag in prop::collection::vec(-5.0..5.0f64, 4),
    ) {
        // Symmetric matrix: diag + fixed symmetric coupling.
        let n = 4usize;
        let mut a = DenseMatrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = diag[i];
        }
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        a[(2, 3)] = -0.5;
        a[(3, 2)] = -0.5;
        let s = a.spectral_norm_symmetric(1e-12, 20_000);
        prop_assert!(s <= a.norm_inf_induced() + 1e-6);
    }

    #[test]
    fn sample_indices_always_distinct(seed in 0u64..1000, n in 1usize..30, kfrac in 0.0..1.0f64) {
        let k = ((n as f64) * kfrac) as usize;
        let mut r = asynciter_numerics::rng::rng(seed);
        let s = asynciter_numerics::rng::sample_indices(&mut r, n, k);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        prop_assert_eq!(d.len(), k);
    }
}
