//! Offline stand-in for the subset of `parking_lot` this workspace uses:
//! an [`RwLock`] whose `read`/`write` return guards directly (no
//! poisoning), layered over `std::sync::RwLock`.

#![deny(missing_docs)]
#![warn(clippy::all)]
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// A reader–writer lock with `parking_lot`-style (non-poisoning) API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::RwLock;

    #[test]
    fn read_write_roundtrip() {
        let l = RwLock::new(1u32);
        assert_eq!(*l.read(), 1);
        *l.write() = 5;
        assert_eq!(*l.read(), 5);
        assert_eq!(l.into_inner(), 5);
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let l = RwLock::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *l.write() += 1;
                    }
                });
            }
            s.spawn(|| {
                for _ in 0..1000 {
                    let _ = *l.read();
                }
            });
        });
        assert_eq!(*l.read(), 2000);
    }
}
