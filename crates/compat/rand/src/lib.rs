//! Offline stand-in for the subset of the `rand` API this workspace uses.
//!
//! The workspace builds hermetically (no network, no registry), so instead
//! of the crates.io `rand` it ships this small deterministic implementation
//! with source-compatible signatures:
//!
//! - [`rngs::StdRng`] — a seedable, cloneable PRNG (xoshiro256++ seeded
//!   through the SplitMix64 finaliser, the same construction
//!   `rand::StdRng::seed_from_u64` documents).
//! - [`SeedableRng::seed_from_u64`] — deterministic seeding.
//! - [`RngExt::random_range`] — uniform sampling from `Range` /
//!   `RangeInclusive` over the integer and float types the workspace
//!   samples.
//! - [`RngExt::random`] — a full-width draw for types with a canonical
//!   uniform distribution.
//!
//! Determinism (same seed → same stream, forever) is the property the
//! experiments rely on; statistical quality is that of xoshiro256++, which
//! is more than adequate for schedule generation and fault injection.

#![deny(missing_docs)]
#![warn(clippy::all)]
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform word source.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++ with SplitMix64
    /// seed expansion. `Clone` + `Debug` + `Send`, like the real `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A half-open or closed sampling interval, built from range syntax.
#[derive(Debug, Clone, Copy)]
pub struct RangeSpec<T> {
    lo: T,
    hi: T,
    inclusive: bool,
}

impl<T> From<Range<T>> for RangeSpec<T> {
    fn from(r: Range<T>) -> Self {
        Self {
            lo: r.start,
            hi: r.end,
            inclusive: false,
        }
    }
}

impl<T: Copy> From<RangeInclusive<T>> for RangeSpec<T> {
    fn from(r: RangeInclusive<T>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end(),
            inclusive: true,
        }
    }
}

/// Types that can be drawn uniformly from a [`RangeSpec`].
pub trait SampleUniform: Sized {
    /// Draws one sample from `spec` using `rng`.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, spec: RangeSpec<Self>) -> Self;
}

/// Types with a canonical full-width uniform draw ([`RngExt::random`]).
pub trait Standard: Sized {
    /// Draws one sample.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

#[inline]
fn mul_shift(word: u64, span: u64) -> u64 {
    ((word as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, spec: RangeSpec<Self>) -> Self {
                let (lo, hi) = (spec.lo as u64, spec.hi as u64);
                assert!(
                    if spec.inclusive { lo <= hi } else { lo < hi },
                    "random_range: empty range"
                );
                let span = (hi - lo).wrapping_add(if spec.inclusive { 1 } else { 0 });
                if span == 0 {
                    // Inclusive full-width range: any word is valid.
                    return rng.next_u64() as $t;
                }
                (lo + mul_shift(rng.next_u64(), span)) as $t
            }
        }

        impl Standard for $t {
            #[inline]
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, spec: RangeSpec<Self>) -> Self {
        if spec.inclusive {
            assert!(spec.lo <= spec.hi, "random_range: empty float range");
            if spec.lo == spec.hi {
                return spec.lo;
            }
            // 53 uniform mantissa bits → u ∈ [0, 1] inclusive.
            let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
            return spec.lo + u * (spec.hi - spec.lo);
        }
        assert!(spec.lo < spec.hi, "random_range: empty float range");
        // 53 uniform mantissa bits → u ∈ [0, 1).
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = spec.lo + u * (spec.hi - spec.lo);
        // Guard against rounding up to `hi` (works for either sign of hi).
        if v >= spec.hi {
            spec.lo.max(spec.hi.next_down())
        } else {
            v
        }
    }
}

impl Standard for f64 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ergonomic sampling methods, blanket-implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// Uniform draw from a `lo..hi` or `lo..=hi` range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    #[inline]
    fn random_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: Into<RangeSpec<T>>,
    {
        T::sample_range(self, range.into())
    }

    /// Full-width uniform draw (`u64`, `f64` in `[0,1)`, `bool`, …).
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..32 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(10);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn int_ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u64 = r.random_range(3..=7);
            assert!((3..=7).contains(&x));
            let y: usize = r.random_range(0..5);
            assert!(y < 5);
            let z: u32 = r.random_range(0..2u32);
            assert!(z < 2);
        }
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_range_half_open() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&x));
            let y: f64 = r.random_range(-2.0..5.0);
            assert!((-2.0..5.0).contains(&y));
        }
    }

    #[test]
    fn float_mean_is_central() {
        let mut r = StdRng::seed_from_u64(4);
        let mean: f64 = (0..20_000).map(|_| r.random_range(0.0..1.0)).sum::<f64>() / 20_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn inclusive_float_ranges() {
        let mut r = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x: f64 = r.random_range(-2.0..=-1.0);
            assert!((-2.0..=-1.0).contains(&x));
        }
        // Degenerate inclusive range returns the point.
        assert_eq!(r.random_range(3.5..=3.5), 3.5);
    }

    #[test]
    fn negative_exclusive_float_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(12);
        for _ in 0..10_000 {
            let x: f64 = r.random_range(-2.0..-1.0);
            assert!((-2.0..-1.0).contains(&x), "{x}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(5);
        let _: usize = r.random_range(3..3);
    }

    #[test]
    fn clone_forks_the_stream() {
        let mut a = StdRng::seed_from_u64(6);
        let _ = a.random::<u64>();
        let mut b = a.clone();
        assert_eq!(a.random::<u64>(), b.random::<u64>());
    }
}
