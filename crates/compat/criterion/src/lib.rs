//! Offline stand-in for the subset of the `criterion` API the workspace
//! benches use. It is a real (if simple) harness: each benchmark is warmed
//! up, then timed over repeated iterations for roughly the configured
//! measurement time, and the mean/min per-iteration times are printed in a
//! criterion-like format. Statistical machinery (outlier analysis, HTML
//! reports) is intentionally absent.

#![deny(missing_docs)]
#![warn(clippy::all)]
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Sampling strategy selector (accepted for compatibility; the harness
/// always samples flat).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingMode {
    /// Automatic mode.
    Auto,
    /// Fixed iteration batches.
    Flat,
    /// Linearly growing batches.
    Linear,
}

/// Throughput annotation printed alongside timings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id `"{name}/{param}"`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        Self {
            name: format!("{}/{}", name.into(), param),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(param: impl Display) -> Self {
        Self {
            name: param.to_string(),
        }
    }
}

/// Things usable as benchmark names (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_name(self) -> String {
        self
    }
}

/// Per-iteration timer handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the batch of iterations this sample requested.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn fmt_time(d: Duration) -> String {
    let ns = d.as_secs_f64() * 1e9;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
            throughput: None,
        }
    }
}

fn run_benchmark(name: &str, settings: &Settings, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up: single iterations until the warm-up budget is spent; the
    // measured single-iteration time calibrates the batch size.
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(0);
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < settings.warm_up_time || warm_iters == 0 {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter += b.elapsed;
        warm_iters += 1;
        if warm_iters >= 1000 {
            break;
        }
    }
    per_iter /= warm_iters as u32;

    // Batch so one sample costs ~ measurement_time / sample_size.
    let sample_budget = settings.measurement_time / settings.sample_size.max(1) as u32;
    let iters_per_sample = if per_iter.is_zero() {
        1000
    } else {
        (sample_budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };

    let mut mean_sum = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..settings.sample_size.max(1) {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per = b.elapsed / iters_per_sample as u32;
        mean_sum += per;
        best = best.min(per);
    }
    let mean = mean_sum / settings.sample_size.max(1) as u32;

    let mut line = format!(
        "{name:<48} time: [{} mean, {} best]",
        fmt_time(mean),
        fmt_time(best)
    );
    if let Some(tp) = settings.throughput {
        let per_sec = |count: u64| {
            if mean.is_zero() {
                f64::INFINITY
            } else {
                count as f64 / mean.as_secs_f64()
            }
        };
        match tp {
            Throughput::Elements(n) => {
                line.push_str(&format!("  thrpt: {:.3e} elem/s", per_sec(n)));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("  thrpt: {:.3e} B/s", per_sec(n)));
            }
        }
    }
    println!("{line}");
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    settings: Settings,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n;
        self
    }

    /// Sets the measurement-time budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Sets the warm-up budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Sets the sampling mode (accepted for compatibility).
    pub fn sampling_mode(&mut self, _mode: SamplingMode) -> &mut Self {
        self
    }

    /// Sets the throughput annotation.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.settings.throughput = Some(tp);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_name());
        run_benchmark(&name, &self.settings, &mut f);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        P: ?Sized,
        F: FnMut(&mut Bencher, &P),
    {
        let name = format!("{}/{}", self.name, id.into_name());
        run_benchmark(&name, &self.settings, &mut |b| f(b, input));
        self
    }

    /// Finishes the group.
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let settings = self.settings.clone();
        BenchmarkGroup {
            name: name.into(),
            settings,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let settings = self.settings.clone();
        run_benchmark(name, &settings, &mut f);
        self
    }
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub use std::hint::black_box;

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1))
            .throughput(Throughput::Elements(4))
            .sampling_mode(SamplingMode::Flat);
        let mut count = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                count += 1;
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &p| {
            b.iter(|| p * 2)
        });
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("a", 7).into_name(), "a/7");
        assert_eq!(BenchmarkId::from_parameter("x").into_name(), "x");
    }
}
