//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Each `proptest!` test expands to a plain `#[test]` that draws a
//! deterministic sequence of random cases (seeded from the test name, so
//! failures reproduce across runs) and executes the body per case.
//! Differences from the real crate: no shrinking, no persisted failure
//! files, and a smaller strategy library — exactly the strategies the
//! workspace's property tests use (ranges, tuples, `prop_map`,
//! `collection::vec`, `bool::ANY`).

#![deny(missing_docs)]
#![warn(clippy::all)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::ops::Range;

/// Per-run configuration of a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Derives a stable seed from a test name (FNV-1a).
pub fn test_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The RNG for one case of one test.
pub fn rng_for(seed: u64, case: u32) -> StdRng {
    StdRng::seed_from_u64(seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1)))
}

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.start..self.end)
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.start..self.end)
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_tuple {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Boolean strategies.
pub mod bool {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Uniform `true`/`false`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.random()
        }
    }

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;
    use std::ops::Range;

    /// A length specification: fixed or sampled from a range.
    #[derive(Debug, Clone)]
    pub enum SizeRange {
        /// Exactly this many elements.
        Fixed(usize),
        /// Uniformly sampled length (half-open).
        Sampled(Range<usize>),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Fixed(n)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange::Sampled(r)
        }
    }

    /// Strategy for `Vec<S::Value>` with element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = match &self.size {
                SizeRange::Fixed(n) => *n,
                SizeRange::Sampled(r) => rng.random_range(r.start..r.end),
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vector strategy with the given element strategy and size spec.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `proptest`-style namespace module (`prop::collection::vec`, …).
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Asserts a property within a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality within a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Declares property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running the body over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); ) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __seed = $crate::test_seed(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let mut __rng = $crate::rng_for(__seed, __case);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_case() {
        let s = (0u64..100, 0.0..1.0f64).prop_map(|(a, b)| (a, b));
        let mut r1 = crate::rng_for(1, 0);
        let mut r2 = crate::rng_for(1, 0);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u64..9, b in -1.0..1.0f64, flag in prop::bool::ANY) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-1.0..1.0).contains(&b));
            prop_assert!(u8::from(flag) <= 1);
        }

        #[test]
        fn vec_strategy_sizes(xs in prop::collection::vec(0.0..1.0f64, 4), ys in prop::collection::vec(0u64..5, 0..3)) {
            prop_assert_eq!(xs.len(), 4);
            prop_assert!(ys.len() < 3);
        }
    }
}
