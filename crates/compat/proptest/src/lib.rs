//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Each `proptest!` test expands to a plain `#[test]` that draws a
//! deterministic sequence of random cases (seeded from the test name, so
//! failures reproduce across runs) and executes the body per case.
//! Differences from the real crate: no persisted failure files and a
//! smaller strategy library — exactly the strategies the workspace's
//! property tests use (ranges, tuples, `prop_map`, `collection::vec`,
//! `bool::ANY`).
//!
//! Shrinking *is* supported, in two layers:
//!
//! - [`Strategy::shrink`] enumerates simpler candidate values (integers
//!   move deterministically toward the range start by halving, vectors
//!   toward their minimum length by dropping halves then single
//!   elements, tuples shrink one component at a time). `prop_map`ped
//!   strategies cannot shrink (the mapping is not invertible) and
//!   return no candidates — same limitation the real crate solves with
//!   value trees, which this shim deliberately avoids.
//! - [`shrink`] exposes the raw greedy machinery
//!   ([`shrink::minimize`], candidate enumerators) for callers that
//!   minimise domain objects directly — the conformance fuzzer's trace
//!   shrinker is built on it.
//!
//! [`check_with_shrinking`] runs a property function-style over a
//! strategy and, on failure, greedily minimises the counterexample
//! before panicking with it.

#![deny(missing_docs)]
#![warn(clippy::all)]
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::ops::Range;

/// Per-run configuration of a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Derives a stable seed from a test name (FNV-1a).
pub fn test_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The RNG for one case of one test.
pub fn rng_for(seed: u64, case: u32) -> StdRng {
    StdRng::seed_from_u64(seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1)))
}

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Enumerates strictly simpler candidates for `value`, most
    /// aggressive first (e.g. the range start before a halving step).
    /// Deterministic: the same value always yields the same candidates,
    /// so greedy minimisation ([`shrink::minimize`]) reproduces across
    /// runs. The default is no candidates (unshrinkable).
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.start..self.end)
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        let v = *value;
        if !v.is_finite() || v <= self.start {
            return Vec::new();
        }
        let mid = self.start + (v - self.start) / 2.0;
        let mut out = vec![self.start];
        if mid > self.start && mid < v {
            out.push(mid);
        }
        out
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.start..self.end)
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                // One halving heuristic for all unsigned widths: the
                // canonical u64 implementation in [`shrink`].
                crate::shrink::u64_candidates(self.start as u64, *value as u64)
                    .into_iter()
                    .map(|x| x as $t)
                    .collect()
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_tuple {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone),+
        {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = cand;
                        out.push(v);
                    }
                )+
                out
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Boolean strategies.
pub mod bool {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Uniform `true`/`false`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.random()
        }

        fn shrink(&self, value: &bool) -> Vec<bool> {
            if *value {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;
    use std::ops::Range;

    /// A length specification: fixed or sampled from a range.
    #[derive(Debug, Clone)]
    pub enum SizeRange {
        /// Exactly this many elements.
        Fixed(usize),
        /// Uniformly sampled length (half-open).
        Sampled(Range<usize>),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Fixed(n)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange::Sampled(r)
        }
    }

    /// Strategy for `Vec<S::Value>` with element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = match &self.size {
                SizeRange::Fixed(n) => *n,
                SizeRange::Sampled(r) => rng.random_range(r.start..r.end),
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }

        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let min_len = match &self.size {
                SizeRange::Fixed(n) => *n,
                SizeRange::Sampled(r) => r.start,
            };
            let mut out = crate::shrink::vec_remove_candidates(value, min_len);
            // Element-wise shrinks, in place, length unchanged.
            for (i, elem) in value.iter().enumerate() {
                for cand in self.element.shrink(elem) {
                    let mut v = value.clone();
                    v[i] = cand;
                    out.push(v);
                }
            }
            out
        }
    }

    /// Vector strategy with the given element strategy and size spec.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The greedy minimisation machinery behind [`Strategy::shrink`].
///
/// Everything here is deterministic: candidate enumeration depends only
/// on the input value, and [`minimize`](shrink::minimize) always takes
/// the first failing
/// candidate, so a given failure minimises to the same counterexample on
/// every run. Callers with domain objects no strategy describes (the
/// conformance fuzzer's traces) drive [`minimize`](shrink::minimize)
/// with their own
/// candidate functions.
pub mod shrink {
    /// Greedily minimises a failing value: repeatedly replaces the
    /// current value with the first candidate that still fails, until no
    /// candidate fails or `max_attempts` predicate evaluations are
    /// spent. Returns the minimal value and the attempts used.
    pub fn minimize<T, F, C>(
        initial: T,
        mut still_fails: F,
        candidates: C,
        max_attempts: u64,
    ) -> (T, u64)
    where
        F: FnMut(&T) -> bool,
        C: Fn(&T) -> Vec<T>,
    {
        let mut cur = initial;
        let mut attempts = 0u64;
        'outer: loop {
            for cand in candidates(&cur) {
                if attempts >= max_attempts {
                    break 'outer;
                }
                attempts += 1;
                if still_fails(&cand) {
                    cur = cand;
                    continue 'outer;
                }
            }
            break;
        }
        (cur, attempts)
    }

    /// Shrink candidates for a `u64` toward `min`: the floor itself,
    /// the halfway point, then one step down.
    pub fn u64_candidates(min: u64, v: u64) -> Vec<u64> {
        if v <= min {
            return Vec::new();
        }
        let mut out = vec![min];
        let mid = min + (v - min) / 2;
        if mid > min && mid < v {
            out.push(mid);
        }
        if v - 1 > mid {
            out.push(v - 1);
        }
        out
    }

    /// Removal candidates for a vector, respecting `min_len`: keep the
    /// first half, keep the second half, drop the last element, then
    /// (for short vectors) drop each single element.
    pub fn vec_remove_candidates<T: Clone>(v: &[T], min_len: usize) -> Vec<Vec<T>> {
        let len = v.len();
        if len <= min_len {
            return Vec::new();
        }
        let mut out: Vec<Vec<T>> = Vec::new();
        let half = (len / 2).max(min_len);
        if half < len {
            out.push(v[..half].to_vec());
            out.push(v[len - half..].to_vec());
        }
        out.push(v[..len - 1].to_vec());
        if len <= 64 {
            for i in 0..len.saturating_sub(1) {
                let mut w = v.to_vec();
                w.remove(i);
                out.push(w);
            }
        }
        out
    }
}

/// Runs `property` over `config.cases` generated values and, on the
/// first failure, greedily minimises the counterexample with
/// [`Strategy::shrink`] before panicking with the minimal value — the
/// function-style twin of the [`proptest!`] macro for strategies whose
/// values are `Clone + Debug`.
///
/// # Panics
/// Panics with the minimal counterexample when the property fails.
pub fn check_with_shrinking<S, F>(
    config: &ProptestConfig,
    name: &str,
    strategy: &S,
    mut property: F,
) where
    S: Strategy,
    S::Value: Clone + std::fmt::Debug,
    F: FnMut(&S::Value) -> bool,
{
    let seed = test_seed(name);
    for case in 0..config.cases {
        let mut rng = rng_for(seed, case);
        let value = strategy.generate(&mut rng);
        if property(&value) {
            continue;
        }
        let (minimal, attempts) =
            shrink::minimize(value, |v| !property(v), |v| strategy.shrink(v), 10_000);
        panic!(
            "property `{name}` failed at case {case}; minimal counterexample \
             after {attempts} shrink attempts: {minimal:?}"
        );
    }
}

/// `proptest`-style namespace module (`prop::collection::vec`, …).
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{check_with_shrinking, shrink};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Asserts a property within a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality within a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Declares property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running the body over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); ) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __seed = $crate::test_seed(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let mut __rng = $crate::rng_for(__seed, __case);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn int_shrink_moves_toward_range_start() {
        let s = 0u64..100;
        assert_eq!(s.shrink(&0), Vec::<u64>::new());
        assert_eq!(s.shrink(&1), vec![0]);
        assert_eq!(s.shrink(&2), vec![0, 1]);
        assert_eq!(s.shrink(&77), vec![0, 38, 76]);
        let s = 10u64..100;
        assert_eq!(s.shrink(&10), Vec::<u64>::new());
        assert_eq!(s.shrink(&14), vec![10, 12, 13]);
    }

    #[test]
    fn int_shrink_minimises_deterministically() {
        // Property fails for v >= 13: greedy minimisation must land on
        // exactly 13 from any failing start, every run.
        let s = 0u64..100;
        for start in [13u64, 14, 40, 77, 99] {
            let (minimal, _) = shrink::minimize(start, |v| *v >= 13, |v| s.shrink(v), 10_000);
            assert_eq!(minimal, 13, "from {start}");
        }
    }

    #[test]
    fn vec_shrink_minimises_toward_minimal_witness() {
        // Failure: some element >= 50. Minimal counterexample: the
        // one-element vector [50].
        let s = prop::collection::vec(0u64..100, 0..9);
        let start = vec![3u64, 72, 9, 55, 61];
        let (minimal, _) = shrink::minimize(
            start,
            |v: &Vec<u64>| v.iter().any(|&x| x >= 50),
            |v| s.shrink(v),
            100_000,
        );
        assert_eq!(minimal, vec![50]);
    }

    #[test]
    fn vec_remove_candidates_respect_min_len() {
        let v = vec![1, 2, 3, 4];
        for cand in shrink::vec_remove_candidates(&v, 2) {
            assert!(cand.len() >= 2 && cand.len() < 4);
        }
        assert!(shrink::vec_remove_candidates(&v, 4).is_empty());
        // Fixed-size strategies only shrink elements, never length.
        let s = prop::collection::vec(0u64..10, 3);
        for cand in s.shrink(&vec![5, 5, 5]) {
            assert_eq!(cand.len(), 3);
        }
    }

    #[test]
    fn tuple_and_bool_shrink_componentwise() {
        let s = (0u64..10, prop::bool::ANY);
        let cands = s.shrink(&(4, true));
        assert!(cands.contains(&(0, true)));
        assert!(cands.contains(&(4, false)));
        assert!(prop::bool::ANY.shrink(&false).is_empty());
    }

    #[test]
    fn f64_shrink_halves_toward_start() {
        let s = 0.0..8.0f64;
        let cands = s.shrink(&8.0);
        assert_eq!(cands, vec![0.0, 4.0]);
        assert!(s.shrink(&0.0).is_empty());
    }

    #[test]
    fn check_with_shrinking_reports_minimal_case() {
        let result = std::panic::catch_unwind(|| {
            check_with_shrinking(
                &ProptestConfig::with_cases(64),
                "demo::v_below_13",
                &(0u64..100),
                |v| *v < 13,
            );
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(
            msg.contains("minimal counterexample") && msg.contains(": 13"),
            "{msg}"
        );
    }

    #[test]
    fn check_with_shrinking_passes_quietly() {
        check_with_shrinking(
            &ProptestConfig::with_cases(32),
            "demo::always",
            &(0u64..100),
            |_| true,
        );
    }

    #[test]
    fn strategies_are_deterministic_per_case() {
        let s = (0u64..100, 0.0..1.0f64).prop_map(|(a, b)| (a, b));
        let mut r1 = crate::rng_for(1, 0);
        let mut r2 = crate::rng_for(1, 0);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u64..9, b in -1.0..1.0f64, flag in prop::bool::ANY) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-1.0..1.0).contains(&b));
            prop_assert!(u8::from(flag) <= 1);
        }

        #[test]
        fn vec_strategy_sizes(xs in prop::collection::vec(0.0..1.0f64, 4), ys in prop::collection::vec(0u64..5, 0..3)) {
            prop_assert_eq!(xs.len(), 4);
            prop_assert!(ys.len() < 3);
        }
    }
}
