//! Offline stand-in for the subset of `crossbeam` this workspace uses:
//! [`channel`] (unbounded sender/receiver with `send` / `recv` /
//! `try_recv` / `recv_timeout`) and [`utils::CachePadded`].
//!
//! The channel is a thin layer over `std::sync::mpsc`, which provides the
//! exact semantics the runtime needs (multi-producer via `Sender: Clone`,
//! single consumer per inbox, disconnection on drop of all senders).

#![deny(missing_docs)]
#![warn(clippy::all)]
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

/// Unbounded channels with crossbeam-compatible names.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders disconnected and the buffer is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders disconnected and the buffer is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] on disconnection.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half of an unbounded channel (cloneable).
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails only when the receiver is dropped.
        ///
        /// # Errors
        /// Returns the message back when the channel is disconnected.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            self.0.send(t).map_err(|mpsc::SendError(t)| SendError(t))
        }
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        ///
        /// # Errors
        /// [`RecvError`] when the channel is disconnected and drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        /// [`TryRecvError::Empty`] or [`TryRecvError::Disconnected`].
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocking receive with a timeout.
        ///
        /// # Errors
        /// [`RecvTimeoutError::Timeout`] or
        /// [`RecvTimeoutError::Disconnected`].
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

/// Utility types with crossbeam-compatible names.
pub mod utils {
    /// Pads and aligns a value to (at least) one cache line, preventing
    /// false sharing between adjacent slots in a `Vec`.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wraps `value`.
        pub const fn new(value: T) -> Self {
            Self { value }
        }

        /// Unwraps the value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> std::ops::Deref for CachePadded<T> {
        type Target = T;

        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> std::ops::DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};
    use super::utils::CachePadded;
    use std::time::Duration;

    #[test]
    fn channel_roundtrip_and_disconnect() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Empty);
        drop(tx);
        drop(tx2);
        assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Disconnected);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u32>();
        assert!(rx.recv_timeout(Duration::from_millis(5)).is_err());
    }

    #[test]
    fn cache_padded_is_aligned_and_derefs() {
        let p = CachePadded::new(7u64);
        assert_eq!(*p, 7);
        assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 128);
        assert_eq!(p.into_inner(), 7);
    }

    #[test]
    fn multi_producer_across_threads() {
        let (tx, rx) = unbounded::<usize>();
        std::thread::scope(|s| {
            for w in 0..4 {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        tx.send(w * 100 + i).unwrap();
                    }
                });
            }
            drop(tx);
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            assert_eq!(got.len(), 400);
        });
    }
}
