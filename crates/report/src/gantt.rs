//! Gantt rendering of simulation timelines (paper Fig. 1 / Fig. 2).
//!
//! Each processor gets a lane; updating phases are drawn as boxes
//! labelled with their global iteration numbers; communications are
//! listed below the lanes with solid (`──▶`, full updates) or hatched
//! (`╌╌▶`, partial updates — flexible communication) arrows, exactly the
//! visual vocabulary of the paper's figures.

/// A renderable phase: `(processor, start, end, iteration number)`.
pub type GPhase = (usize, u64, u64, u64);

/// A renderable communication:
/// `(from, to, send_t, recv_t, partial?)`.
pub type GComm = (usize, usize, u64, u64, bool);

/// Renders the Gantt chart.
///
/// `cols` is the target character width of the time axis; the time range
/// is compressed to fit. Phases shorter than one column still occupy one
/// cell.
pub fn render_gantt(
    num_procs: usize,
    phases: &[GPhase],
    comms: &[GComm],
    cols: usize,
    title: &str,
) -> String {
    let cols = cols.max(32);
    let horizon = phases
        .iter()
        .map(|&(_, _, e, _)| e)
        .chain(comms.iter().map(|&(_, _, _, r, _)| r))
        .max()
        .unwrap_or(1)
        .max(1);
    let scale = |t: u64| ((t as f64 / horizon as f64) * (cols - 1) as f64).round() as usize;

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    // Time axis.
    out.push_str(&format!(
        "      t=0{}t={}\n",
        " ".repeat(cols.saturating_sub(8 + horizon.to_string().len())),
        horizon
    ));
    for p in 0..num_procs {
        let mut lane = vec![' '; cols];
        let mut labels = vec![' '; cols];
        for &(proc, s, e, j) in phases {
            if proc != p {
                continue;
            }
            let (a, b) = (scale(s), scale(e).max(scale(s) + 1));
            lane[a] = '[';
            for c in lane.iter_mut().take(b.min(cols)).skip(a + 1) {
                *c = '=';
            }
            if b < cols {
                lane[b] = ']';
            } else {
                lane[cols - 1] = ']';
            }
            // Iteration label centred in the box (digits overwrite '=').
            let text = j.to_string();
            let mid = (a + b.min(cols)) / 2;
            let start = mid.saturating_sub(text.len() / 2).max(a + 1);
            for (k, ch) in text.chars().enumerate() {
                let pos = start + k;
                if pos < b.min(cols) && pos < cols {
                    labels[pos] = ch;
                }
            }
        }
        // Merge labels into the lane (labels win over '=').
        for (l, c) in lane.iter_mut().zip(&labels) {
            if *c != ' ' {
                *l = *c;
            }
        }
        out.push_str(&format!("P{p:<3} |{}\n", lane.iter().collect::<String>()));
    }
    if !comms.is_empty() {
        out.push_str("communications (send → recv):\n");
        let mut sorted: Vec<&GComm> = comms.iter().collect();
        sorted.sort_by_key(|&&(_, _, s, _, _)| s);
        for &&(from, to, s, r, partial) in &sorted {
            let arrow = if partial { "╌╌▶" } else { "──▶" };
            let kind = if partial { "partial" } else { "full" };
            out.push_str(&format!(
                "  P{from} {arrow} P{to}   t={s:<6} → t={r:<6} ({kind})\n"
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_lanes_and_boxes() {
        let phases = vec![(0, 0, 3, 1), (1, 0, 5, 2), (0, 3, 6, 3)];
        let comms = vec![(0, 1, 3, 4, false), (1, 0, 5, 6, true)];
        let g = render_gantt(2, &phases, &comms, 60, "Fig test");
        assert!(g.contains("Fig test"));
        assert!(g.contains("P0"));
        assert!(g.contains("P1"));
        assert!(g.contains('['));
        assert!(g.contains(']'));
        assert!(g.contains("──▶"));
        assert!(g.contains("╌╌▶"));
        assert!(g.contains("(full)"));
        assert!(g.contains("(partial)"));
    }

    #[test]
    fn iteration_numbers_appear() {
        let phases = vec![(0, 0, 10, 7)];
        let g = render_gantt(1, &phases, &[], 60, "t");
        assert!(g.contains('7'), "{g}");
    }

    #[test]
    fn empty_input_is_graceful() {
        let g = render_gantt(1, &[], &[], 40, "empty");
        assert!(g.contains("empty"));
        assert!(g.contains("P0"));
    }

    #[test]
    fn narrow_width_clamped() {
        let phases = vec![(0, 0, 100, 1)];
        let g = render_gantt(1, &phases, &[], 1, "narrow");
        assert!(g.lines().count() >= 3);
    }
}
