//! Batched report streaming for the multi-tenant service layer.
//!
//! A service run completes thousands of per-tenant `Session`s; shipping
//! each full `RunReport` (final iterates included) would dwarf the
//! useful signal. The service instead streams [`ServiceBatch`]es of
//! compact [`ServiceRecord`]s — one per finished job, carrying the
//! tenant/job identity, outcome, convergence summary, and a 64-bit
//! digest of the final iterate's exact bits ([`hash_f64s`]) so
//! bit-identity can be spot-checked from the artefact alone. A whole
//! run rolls up into a [`ServiceDoc`] (`BENCH_service.json`), the
//! committed-baseline format the soak comparator gates on.
//!
//! Same serialization discipline as the gate documents in [`crate::json`]:
//! hand-rolled JSON, explicit schema version, strict field checks.

use crate::json::{
    opt_u64, req, req_bool, req_f64, req_str, req_u64, Json, JsonError, SCHEMA_VERSION,
};

/// FNV-1a digest of the exact bit patterns of a float slice — the
/// bit-identity fingerprint carried by every [`ServiceRecord`]. Two
/// vectors hash equal iff they are bitwise equal (up to hash collision);
/// `-0.0` vs `0.0` and differing NaN payloads are distinguished, which
/// is exactly what the tenant-equivalence contract needs.
pub fn hash_f64s(xs: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for x in xs {
        for b in x.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Renders a digest the way records store it (16 lowercase hex digits —
/// JSON numbers cannot carry 64 bits exactly).
pub fn render_hash(h: u64) -> String {
    format!("{h:016x}")
}

fn parse_hash(text: &str) -> Result<u64, JsonError> {
    if text.len() != 16 {
        return Err(JsonError::semantic(format!(
            "hash `{text}` is not 16 hex digits"
        )));
    }
    u64::from_str_radix(text, 16)
        .map_err(|_| JsonError::semantic(format!("hash `{text}` is not 16 hex digits")))
}

/// One finished (or rejected/cancelled) service job.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceRecord {
    /// Owning tenant.
    pub tenant: u64,
    /// Job id in admission order.
    pub job: u64,
    /// Problem id (e.g. `"jacobi"`).
    pub problem: String,
    /// Backend id (e.g. `"cluster"`).
    pub backend: String,
    /// `"ok"`, `"failed"`, `"rejected"` or `"cancelled"`.
    pub status: String,
    /// Failure/rejection message (empty when ok).
    pub note: String,
    /// The tenant seed the job ran with.
    pub seed: u64,
    /// Steps executed (0 unless ok).
    pub steps: u64,
    /// Fixed-point residual of the final iterate (NaN unless ok).
    pub final_residual: f64,
    /// [`hash_f64s`] digest of the final iterate's exact bits (0 unless
    /// ok).
    pub final_x_hash: u64,
    /// Whether a residual target fired early.
    pub stopped_early: bool,
    /// Virtual-clock tick at admission.
    pub submitted_at: u64,
    /// Virtual-clock tick at completion.
    pub completed_at: u64,
    /// Wall-clock seconds the job itself ran (0 unless ok).
    pub wall_secs: f64,
}

impl ServiceRecord {
    /// True when the job ran to completion.
    pub fn is_ok(&self) -> bool {
        self.status == "ok"
    }

    /// Serializes the record.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("tenant".into(), Json::Num(self.tenant as f64)),
            ("job".into(), Json::Num(self.job as f64)),
            ("problem".into(), Json::Str(self.problem.clone())),
            ("backend".into(), Json::Str(self.backend.clone())),
            ("status".into(), Json::Str(self.status.clone())),
            ("note".into(), Json::Str(self.note.clone())),
            // Hex, not a JSON number: tenant seeds are full 64-bit
            // values (child_seed output), which an f64 cannot carry.
            ("seed".into(), Json::Str(render_hash(self.seed))),
            ("steps".into(), Json::Num(self.steps as f64)),
            ("final_residual".into(), Json::Num(self.final_residual)),
            (
                "final_x_hash".into(),
                Json::Str(render_hash(self.final_x_hash)),
            ),
            ("stopped_early".into(), Json::Bool(self.stopped_early)),
            ("submitted_at".into(), Json::Num(self.submitted_at as f64)),
            ("completed_at".into(), Json::Num(self.completed_at as f64)),
            ("wall_secs".into(), Json::Num(self.wall_secs)),
        ])
    }

    /// Parses a record.
    ///
    /// # Errors
    /// Missing or mistyped fields, malformed hash.
    pub fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            tenant: req_u64(json, "tenant")?,
            job: req_u64(json, "job")?,
            problem: req_str(json, "problem")?,
            backend: req_str(json, "backend")?,
            status: req_str(json, "status")?,
            note: req_str(json, "note")?,
            seed: parse_hash(&req_str(json, "seed")?)?,
            steps: req_u64(json, "steps")?,
            final_residual: req_f64(json, "final_residual")?,
            final_x_hash: parse_hash(&req_str(json, "final_x_hash")?)?,
            stopped_early: req_bool(json, "stopped_early")?,
            submitted_at: req_u64(json, "submitted_at")?,
            completed_at: req_u64(json, "completed_at")?,
            wall_secs: req_f64(json, "wall_secs")?,
        })
    }
}

/// One emitted batch: the service flushes records `batch_size` at a
/// time (plus a final partial flush), in completion order.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceBatch {
    /// Flush sequence number (0-based).
    pub seq: u64,
    /// The records flushed together.
    pub records: Vec<ServiceRecord>,
}

impl ServiceBatch {
    /// Serializes the batch.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("seq".into(), Json::Num(self.seq as f64)),
            (
                "records".into(),
                Json::Arr(self.records.iter().map(ServiceRecord::to_json).collect()),
            ),
        ])
    }

    /// Parses a batch.
    ///
    /// # Errors
    /// Missing or mistyped fields.
    pub fn from_json(json: &Json) -> Result<Self, JsonError> {
        let records = req(json, "records")?
            .as_arr()
            .ok_or_else(|| JsonError::semantic("field `records` is not an array"))?
            .iter()
            .map(ServiceRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            seq: req_u64(json, "seq")?,
            records,
        })
    }
}

/// A whole service run: configuration echo, throughput/latency summary,
/// and every emitted batch. This is the `BENCH_service.json` format the
/// soak baseline pins.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceDoc {
    /// Schema version ([`SCHEMA_VERSION`] when produced by this build).
    pub schema_version: u64,
    /// `"deterministic"` or `"free-running"`.
    pub mode: String,
    /// Tenants admitted.
    pub tenants: u64,
    /// Worker threads (1 in deterministic mode).
    pub workers: u64,
    /// Bounded queue capacity the run used.
    pub queue_capacity: u64,
    /// Records per flush.
    pub batch_size: u64,
    /// Jobs that completed ok.
    pub completed: u64,
    /// Jobs that failed in the backend.
    pub failed: u64,
    /// Jobs rejected at admission (queue full / malformed).
    pub rejected: u64,
    /// Jobs cancelled before running.
    pub cancelled: u64,
    /// Whole-sweep wall-clock seconds.
    pub wall_secs: f64,
    /// Completed jobs per wall-clock second.
    pub throughput: f64,
    /// Median per-job wall latency (seconds).
    pub p50_latency_secs: f64,
    /// 95th-percentile per-job wall latency (seconds).
    pub p95_latency_secs: f64,
    /// Worst per-job wall latency (seconds).
    pub max_latency_secs: f64,
    /// The emitted batches, in flush order.
    pub batches: Vec<ServiceBatch>,
}

impl ServiceDoc {
    /// All records across batches, in emission order.
    pub fn records(&self) -> impl Iterator<Item = &ServiceRecord> {
        self.batches.iter().flat_map(|b| b.records.iter())
    }

    /// Serializes the document.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "schema_version".into(),
                Json::Num(self.schema_version as f64),
            ),
            ("mode".into(), Json::Str(self.mode.clone())),
            ("tenants".into(), Json::Num(self.tenants as f64)),
            ("workers".into(), Json::Num(self.workers as f64)),
            (
                "queue_capacity".into(),
                Json::Num(self.queue_capacity as f64),
            ),
            ("batch_size".into(), Json::Num(self.batch_size as f64)),
            ("completed".into(), Json::Num(self.completed as f64)),
            ("failed".into(), Json::Num(self.failed as f64)),
            ("rejected".into(), Json::Num(self.rejected as f64)),
            ("cancelled".into(), Json::Num(self.cancelled as f64)),
            ("wall_secs".into(), Json::Num(self.wall_secs)),
            ("throughput".into(), Json::Num(self.throughput)),
            ("p50_latency_secs".into(), Json::Num(self.p50_latency_secs)),
            ("p95_latency_secs".into(), Json::Num(self.p95_latency_secs)),
            ("max_latency_secs".into(), Json::Num(self.max_latency_secs)),
            (
                "batches".into(),
                Json::Arr(self.batches.iter().map(ServiceBatch::to_json).collect()),
            ),
        ])
    }

    /// Parses a document, rejecting any schema version other than
    /// [`SCHEMA_VERSION`].
    ///
    /// # Errors
    /// Schema mismatch, missing or mistyped fields.
    pub fn from_json(json: &Json) -> Result<Self, JsonError> {
        let schema_version = req_u64(json, "schema_version")?;
        if schema_version != SCHEMA_VERSION {
            return Err(JsonError::semantic(format!(
                "unsupported schema_version {schema_version} (this build reads {SCHEMA_VERSION}); \
                 regenerate the file with the current service binary"
            )));
        }
        let batches = req(json, "batches")?
            .as_arr()
            .ok_or_else(|| JsonError::semantic("field `batches` is not an array"))?
            .iter()
            .map(ServiceBatch::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            schema_version,
            mode: req_str(json, "mode")?,
            tenants: req_u64(json, "tenants")?,
            workers: req_u64(json, "workers")?,
            queue_capacity: req_u64(json, "queue_capacity")?,
            batch_size: req_u64(json, "batch_size")?,
            completed: req_u64(json, "completed")?,
            failed: req_u64(json, "failed")?,
            rejected: req_u64(json, "rejected")?,
            // Absent in docs written before cancellation existed.
            cancelled: opt_u64(json, "cancelled")?.unwrap_or(0),
            wall_secs: req_f64(json, "wall_secs")?,
            throughput: req_f64(json, "throughput")?,
            p50_latency_secs: req_f64(json, "p50_latency_secs")?,
            p95_latency_secs: req_f64(json, "p95_latency_secs")?,
            max_latency_secs: req_f64(json, "max_latency_secs")?,
            batches,
        })
    }

    /// Renders the document as pretty JSON (the on-disk format).
    pub fn render(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Parses document text.
    ///
    /// # Errors
    /// Syntax errors, schema mismatch, missing or mistyped fields.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(job: u64) -> ServiceRecord {
        ServiceRecord {
            tenant: job * 3 + 1,
            job,
            problem: "jacobi".into(),
            backend: "cluster".into(),
            status: "ok".into(),
            note: String::new(),
            // Deliberately above 2^53: seeds must survive the text
            // round-trip even where a JSON number could not carry them.
            seed: 0xDEAD_BEEF_CAFE_F00D ^ job,
            steps: 480,
            final_residual: 7.5e-9,
            final_x_hash: hash_f64s(&[1.0, -0.25, job as f64]),
            stopped_early: true,
            submitted_at: job,
            completed_at: 100 + job,
            wall_secs: 0.002,
        }
    }

    fn sample_doc() -> ServiceDoc {
        ServiceDoc {
            schema_version: SCHEMA_VERSION,
            mode: "deterministic".into(),
            tenants: 3,
            workers: 1,
            queue_capacity: 64,
            batch_size: 2,
            completed: 3,
            failed: 0,
            rejected: 0,
            cancelled: 0,
            wall_secs: 0.01,
            throughput: 300.0,
            p50_latency_secs: 0.002,
            p95_latency_secs: 0.003,
            max_latency_secs: 0.003,
            batches: vec![
                ServiceBatch {
                    seq: 0,
                    records: vec![sample_record(0), sample_record(1)],
                },
                ServiceBatch {
                    seq: 1,
                    records: vec![sample_record(2)],
                },
            ],
        }
    }

    #[test]
    fn hash_distinguishes_exact_bits() {
        assert_eq!(hash_f64s(&[1.0, 2.0]), hash_f64s(&[1.0, 2.0]));
        assert_ne!(hash_f64s(&[1.0, 2.0]), hash_f64s(&[2.0, 1.0]));
        assert_ne!(hash_f64s(&[0.0]), hash_f64s(&[-0.0]), "signed zero");
        assert_ne!(
            hash_f64s(&[1.0]),
            hash_f64s(&[1.0 + f64::EPSILON]),
            "one ulp"
        );
        assert_ne!(hash_f64s(&[]), hash_f64s(&[0.0]));
    }

    #[test]
    fn hash_text_round_trips() {
        for h in [0u64, 1, u64::MAX, 0xdead_beef_0123_4567] {
            assert_eq!(parse_hash(&render_hash(h)).unwrap(), h);
        }
        assert!(parse_hash("xyz").is_err());
        assert!(parse_hash("0123").is_err(), "short hashes rejected");
    }

    #[test]
    fn service_doc_round_trips() {
        let doc = sample_doc();
        assert_eq!(ServiceDoc::parse(&doc.render()).unwrap(), doc);
        assert_eq!(doc.records().count(), 3);
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let mut doc = sample_doc();
        doc.schema_version = SCHEMA_VERSION + 1;
        let err = ServiceDoc::parse(&doc.render()).unwrap_err();
        assert!(err.message.contains("schema_version"), "{err}");
    }

    #[test]
    fn records_survive_failure_statuses() {
        let mut rec = sample_record(9);
        rec.status = "rejected".into();
        rec.note = "queue full: capacity 4 reached".into();
        rec.steps = 0;
        rec.final_residual = f64::NAN;
        rec.final_x_hash = 0;
        let mut doc = sample_doc();
        doc.batches[1].records.push(rec.clone());
        doc.rejected = 1;
        let parsed = ServiceDoc::parse(&doc.render()).unwrap();
        let back = parsed.records().find(|r| r.job == 9).unwrap();
        assert_eq!(back.status, "rejected");
        assert_eq!(back.note, rec.note);
        assert!(back.final_residual.is_nan());
        assert!(!back.is_ok());
    }
}
