//! Aligned text tables for experiment summaries.

/// A simple column-aligned text table.
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given header.
    ///
    /// # Panics
    /// Panics on an empty header.
    pub fn new(header: &[&str]) -> Self {
        assert!(!header.is_empty(), "TextTable: empty header");
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when the arity differs from the header.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "TextTable: row arity");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: appends a row of `Display` cells.
    ///
    /// # Panics
    /// Panics when the arity differs from the header.
    pub fn row_display<D: std::fmt::Display>(&mut self, cells: &[D]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with column alignment (left for the first column, right
    /// for the rest — names left, numbers right).
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (c, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                if c == 0 {
                    line.push_str(&format!("{cell:<w$}"));
                } else {
                    line.push_str(&format!("{cell:>w$}"));
                }
            }
            line
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row_display(&["a", "1"]).row_display(&["longer", "12345"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        // Right-aligned numbers: "1" ends at same column as "12345".
        assert!(lines[2].ends_with("    1"));
        assert!(lines[3].ends_with("12345"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        TextTable::new(&["a"]).row(&["x".into(), "y".into()]);
    }

    #[test]
    fn separator_matches_width() {
        let mut t = TextTable::new(&["ab", "cd"]);
        t.row_display(&["x", "y"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines[1].len(), lines[0].len());
    }
}
