//! Hand-rolled, dependency-free JSON for benchmark-gate artefacts.
//!
//! The workspace is hermetic (no serde), but the benchmark gate needs
//! durable, machine-readable run records: `BENCH_gate.json` written by
//! the scenario-matrix runner and the committed baseline it is compared
//! against. This module provides
//!
//! - [`Json`] — a minimal JSON value with a renderer and a recursive
//!   descent parser (objects keep insertion order, so artefacts diff
//!   cleanly in version control),
//! - [`GateRecord`] / [`GateDoc`] — one scenario cell (problem ×
//!   backend × delay model) and the schema-versioned document holding a
//!   whole matrix,
//! - [`run_report_to_json`] / [`run_report_from_json`] — full
//!   round-trip serialization of `asynciter_core::session::RunReport`.
//!
//! Numbers are rendered with Rust's shortest-round-trip `f64` display,
//! so `serialize → parse` reproduces every finite value bit for bit.
//! Non-finite floats render as `null` and parse back as `NAN`. Integers
//! ride in `f64`s: exact up to `2^53`, far beyond any step or tick
//! count the harness produces. The recorded trace is intentionally not
//! serialized — it is a debugging artefact, unbounded in size, and the
//! gate compares summary metrics only.

use asynciter_core::session::{canonical_backend_name, RunReport};
use std::fmt;
use std::time::Duration;

/// Version stamped into every [`GateDoc`]; [`GateDoc::from_json`]
/// rejects documents with any other value, so stale baselines fail loud
/// instead of mis-comparing.
pub const SCHEMA_VERSION: u64 = 1;

/// Parse depth limit — guards the recursive parser against pathological
/// nesting in hand-edited files.
const MAX_DEPTH: usize = 128;

// ---------------------------------------------------------------------------
// Value type
// ---------------------------------------------------------------------------

/// A JSON value. Objects are ordered key/value vectors: the handful of
/// keys the gate uses never warrants a map, and stable order keeps
/// rendered artefacts reproducible.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (see the module docs for integer/round-trip caveats).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// A parse or field-access error, with the byte position for parse
/// failures.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset of the failure (0 for semantic/field errors).
    pub pos: usize,
    /// Human-readable description.
    pub message: String,
}

impl JsonError {
    pub(crate) fn at(pos: usize, message: impl Into<String>) -> Self {
        Self {
            pos,
            message: message.into(),
        }
    }

    pub(crate) fn semantic(message: impl Into<String>) -> Self {
        Self::at(0, message)
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.pos > 0 {
            write!(f, "json error at byte {}: {}", self.pos, self.message)
        } else {
            write!(f, "json error: {}", self.message)
        }
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if any.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    ///
    /// Mirrors the writer's `render_number` integer path exactly: `-0.0` is
    /// rejected (it renders as a float, not an integer) and the bound is
    /// an *exclusive* `< 2^53` (at `2^53` adjacent integers collide in
    /// `f64`, so "exactly an integer" is no longer well-defined).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v)
                if *v >= 0.0
                    && !(*v == 0.0 && v.is_sign_negative())
                    && v.fract() == 0.0
                    && *v < 2f64.powi(53) =>
            {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The string, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array, if any.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    /// Renders to indented JSON text (2 spaces per level) — the format
    /// used for committed baselines, so diffs review cleanly.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.pretty_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, _depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => render_number(*v, out),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out, 0);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out, 0);
                }
                out.push('}');
            }
        }
    }

    fn pretty_into(&self, out: &mut String, indent: usize) {
        const PAD: &str = "  ";
        match self {
            Json::Arr(items) if !items.is_empty() => {
                // Scalar-only arrays stay on one line (vectors of numbers
                // dominate our artefacts; one-per-line would be unreadable).
                if items
                    .iter()
                    .all(|i| !matches!(i, Json::Arr(_) | Json::Obj(_)))
                {
                    self.render_into(out, 0);
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&PAD.repeat(indent + 1));
                    item.pretty_into(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&PAD.repeat(indent));
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&PAD.repeat(indent + 1));
                    render_string(k, out);
                    out.push_str(": ");
                    v.pretty_into(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&PAD.repeat(indent));
                out.push('}');
            }
            other => other.render_into(out, 0),
        }
    }

    /// Parses JSON text (rejects trailing garbage).
    ///
    /// # Errors
    /// Syntax errors, with the byte position.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::at(p.pos, "trailing characters after value"));
        }
        Ok(value)
    }
}

fn render_number(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() < 2f64.powi(53) && !(v == 0.0 && v.is_sign_negative()) {
        out.push_str(&format!("{}", v as i64));
    } else {
        // Rust's shortest-round-trip Display: parses back bit-identical.
        out.push_str(&format!("{v}"));
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(self.pos, format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::at(self.pos, format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::at(self.pos, "nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(JsonError::at(
                self.pos,
                format!("unexpected character `{}`", b as char),
            )),
            None => Err(JsonError::at(self.pos, "unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::at(start, "invalid utf-8 in number"))?;
        match text.parse::<f64>() {
            // Overflowing literals (`1e999`) parse to infinity; reject
            // them so values cannot silently mutate across round trips
            // (non-finite is only ever *written* as null).
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            Ok(_) => Err(JsonError::at(
                start,
                format!("number `{text}` out of range"),
            )),
            Err(_) => Err(JsonError::at(start, format!("invalid number `{text}`"))),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::at(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: \uD800-\uDBFF must chain a
                            // low surrogate.
                            let c = if (0xD800..=0xDBFF).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if (0xDC00..=0xDFFF).contains(&lo) {
                                        char::from_u32(
                                            0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00),
                                        )
                                    } else {
                                        // High surrogate chained to a
                                        // non-low escape.
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| {
                                JsonError::at(self.pos, "invalid unicode escape")
                            })?);
                            continue;
                        }
                        _ => return Err(JsonError::at(self.pos, "invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 character verbatim.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| JsonError::at(self.pos, "invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(JsonError::at(self.pos, "truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| JsonError::at(self.pos, "invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16)
            .map_err(|_| JsonError::at(self.pos, "invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::at(self.pos, "expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(JsonError::at(self.pos, "expected `,` or `}`")),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Typed field helpers
// ---------------------------------------------------------------------------

pub(crate) fn req<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, JsonError> {
    obj.get(key)
        .ok_or_else(|| JsonError::semantic(format!("missing field `{key}`")))
}

pub(crate) fn req_u64(obj: &Json, key: &str) -> Result<u64, JsonError> {
    req(obj, key)?
        .as_u64()
        .ok_or_else(|| JsonError::semantic(format!("field `{key}` is not a u64")))
}

pub(crate) fn req_f64(obj: &Json, key: &str) -> Result<f64, JsonError> {
    match req(obj, key)? {
        Json::Num(v) => Ok(*v),
        Json::Null => Ok(f64::NAN),
        _ => Err(JsonError::semantic(format!(
            "field `{key}` is not a number"
        ))),
    }
}

pub(crate) fn req_str(obj: &Json, key: &str) -> Result<String, JsonError> {
    req(obj, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| JsonError::semantic(format!("field `{key}` is not a string")))
}

pub(crate) fn req_bool(obj: &Json, key: &str) -> Result<bool, JsonError> {
    req(obj, key)?
        .as_bool()
        .ok_or_else(|| JsonError::semantic(format!("field `{key}` is not a bool")))
}

pub(crate) fn opt_u64(obj: &Json, key: &str) -> Result<Option<u64>, JsonError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| JsonError::semantic(format!("field `{key}` is not a u64"))),
    }
}

pub(crate) fn u64_vec(obj: &Json, key: &str) -> Result<Vec<u64>, JsonError> {
    req(obj, key)?
        .as_arr()
        .ok_or_else(|| JsonError::semantic(format!("field `{key}` is not an array")))?
        .iter()
        .map(|v| {
            v.as_u64()
                .ok_or_else(|| JsonError::semantic(format!("`{key}` element is not a u64")))
        })
        .collect()
}

pub(crate) fn f64_vec(obj: &Json, key: &str) -> Result<Vec<f64>, JsonError> {
    req(obj, key)?
        .as_arr()
        .ok_or_else(|| JsonError::semantic(format!("field `{key}` is not an array")))?
        .iter()
        .map(|v| match v {
            Json::Num(x) => Ok(*x),
            Json::Null => Ok(f64::NAN),
            _ => Err(JsonError::semantic(format!(
                "`{key}` element is not a number"
            ))),
        })
        .collect()
}

pub(crate) fn sample_vec(obj: &Json, key: &str) -> Result<Vec<(u64, f64)>, JsonError> {
    req(obj, key)?
        .as_arr()
        .ok_or_else(|| JsonError::semantic(format!("field `{key}` is not an array")))?
        .iter()
        .map(|pair| {
            let items = pair
                .as_arr()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| JsonError::semantic(format!("`{key}` element is not a pair")))?;
            let j = items[0]
                .as_u64()
                .ok_or_else(|| JsonError::semantic(format!("`{key}` step is not a u64")))?;
            // Null reads back as NaN, mirroring how non-finite sample
            // values are written (see the module docs).
            let v = match &items[1] {
                Json::Num(v) => *v,
                Json::Null => f64::NAN,
                _ => {
                    return Err(JsonError::semantic(format!(
                        "`{key}` value is not a number"
                    )))
                }
            };
            Ok((j, v))
        })
        .collect()
}

pub(crate) fn samples_to_json(samples: &[(u64, f64)]) -> Json {
    Json::Arr(
        samples
            .iter()
            .map(|&(j, v)| Json::Arr(vec![Json::Num(j as f64), Json::Num(v)]))
            .collect(),
    )
}

pub(crate) fn u64s_to_json(values: &[u64]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::Num(v as f64)).collect())
}

// ---------------------------------------------------------------------------
// RunReport round trip
// ---------------------------------------------------------------------------

/// Serializes a `RunReport` (everything except the trace — see the
/// module docs).
pub fn run_report_to_json(report: &RunReport) -> Json {
    Json::Obj(vec![
        ("backend".into(), Json::Str(report.backend.to_string())),
        (
            "final_x".into(),
            Json::Arr(report.final_x.iter().map(|&v| Json::Num(v)).collect()),
        ),
        ("steps".into(), Json::Num(report.steps as f64)),
        (
            "macro_iterations".into(),
            Json::Num(report.macro_iterations as f64),
        ),
        ("errors".into(), samples_to_json(&report.errors)),
        ("error_times".into(), u64s_to_json(&report.error_times)),
        ("residuals".into(), samples_to_json(&report.residuals)),
        ("final_residual".into(), Json::Num(report.final_residual)),
        ("stopped_early".into(), Json::Bool(report.stopped_early)),
        (
            "per_worker_updates".into(),
            u64s_to_json(&report.per_worker_updates),
        ),
        (
            "partial_publishes".into(),
            Json::Num(report.partial_publishes as f64),
        ),
        (
            "partial_reads".into(),
            Json::Num(report.partial_reads as f64),
        ),
        (
            "constraint_checked".into(),
            Json::Num(report.constraint_checked as f64),
        ),
        (
            "constraint_violations".into(),
            Json::Num(report.constraint_violations as f64),
        ),
        (
            "sim_time".into(),
            match report.sim_time {
                Some(t) => Json::Num(t as f64),
                None => Json::Null,
            },
        ),
        (
            "tenant".into(),
            match report.tenant {
                Some(t) => Json::Num(t as f64),
                None => Json::Null,
            },
        ),
        (
            "job".into(),
            match report.job {
                Some(j) => Json::Num(j as f64),
                None => Json::Null,
            },
        ),
        ("wall_secs".into(), Json::Num(report.wall_secs())),
    ])
}

/// Rebuilds a `RunReport` from [`run_report_to_json`] output. The trace
/// comes back as `None` and the backend name is canonicalised through
/// `canonical_backend_name`.
///
/// # Errors
/// Missing or mistyped fields.
pub fn run_report_from_json(json: &Json) -> Result<RunReport, JsonError> {
    let mut report = RunReport {
        backend: canonical_backend_name(&req_str(json, "backend")?),
        final_x: f64_vec(json, "final_x")?,
        steps: req_u64(json, "steps")?,
        macro_iterations: req_u64(json, "macro_iterations")?,
        errors: sample_vec(json, "errors")?,
        error_times: u64_vec(json, "error_times")?,
        residuals: sample_vec(json, "residuals")?,
        final_residual: req_f64(json, "final_residual")?,
        stopped_early: req_bool(json, "stopped_early")?,
        per_worker_updates: u64_vec(json, "per_worker_updates")?,
        partial_publishes: req_u64(json, "partial_publishes")?,
        partial_reads: req_u64(json, "partial_reads")?,
        // Added after v1 documents were written: absent means zero.
        constraint_checked: opt_u64(json, "constraint_checked")?.unwrap_or(0),
        constraint_violations: opt_u64(json, "constraint_violations")?.unwrap_or(0),
        trace: None,
        sim_time: opt_u64(json, "sim_time")?,
        // Added with the service layer: absent means a solo run.
        tenant: opt_u64(json, "tenant")?,
        job: opt_u64(json, "job")?,
        wall: Duration::ZERO,
    };
    report.set_wall_secs(req_f64(json, "wall_secs")?);
    Ok(report)
}

// ---------------------------------------------------------------------------
// Gate records
// ---------------------------------------------------------------------------

/// One scenario cell of the benchmark-gate matrix: which scenario ran
/// and the summary metrics the comparator gates on.
#[derive(Debug, Clone, PartialEq)]
pub struct GateRecord {
    /// Problem id (e.g. `"jacobi"`, `"lasso"`).
    pub problem: String,
    /// Backend id (e.g. `"replay"`, `"shared-mem"`).
    pub backend: String,
    /// Delay-model id (e.g. `"bounded"`, `"out-of-order"`).
    pub delay: String,
    /// How faithfully this backend realises the delay model: `"exact"`,
    /// `"approx"`, or `"baseline"` (ran its closest admissible variant).
    pub fidelity: String,
    /// `"ok"` or `"failed"`.
    pub status: String,
    /// Failure message or fidelity explanation (empty when exact + ok).
    pub note: String,
    /// Seed the cell ran with.
    pub seed: u64,
    /// Steps executed, in the backend's step unit.
    pub steps: u64,
    /// Wall-clock seconds of the backend's run.
    pub wall_secs: f64,
    /// Simulated end time in ticks (simulator cells only).
    pub sim_time: Option<u64>,
    /// Fixed-point residual `‖x − F(x)‖_∞` of the final iterate.
    pub final_residual: f64,
    /// Completed macro-iterations of the executed schedule.
    pub macro_iterations: u64,
    /// Updates per worker (thread/sim backends; empty otherwise).
    pub per_worker_updates: Vec<u64>,
}

impl GateRecord {
    /// The cell's identity within a matrix: `problem|backend|delay`.
    pub fn key(&self) -> String {
        format!("{}|{}|{}", self.problem, self.backend, self.delay)
    }

    /// True when the cell ran to completion.
    pub fn is_ok(&self) -> bool {
        self.status == "ok"
    }

    /// Serializes the record.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("problem".into(), Json::Str(self.problem.clone())),
            ("backend".into(), Json::Str(self.backend.clone())),
            ("delay".into(), Json::Str(self.delay.clone())),
            ("fidelity".into(), Json::Str(self.fidelity.clone())),
            ("status".into(), Json::Str(self.status.clone())),
            ("note".into(), Json::Str(self.note.clone())),
            ("seed".into(), Json::Num(self.seed as f64)),
            ("steps".into(), Json::Num(self.steps as f64)),
            ("wall_secs".into(), Json::Num(self.wall_secs)),
            (
                "sim_time".into(),
                match self.sim_time {
                    Some(t) => Json::Num(t as f64),
                    None => Json::Null,
                },
            ),
            ("final_residual".into(), Json::Num(self.final_residual)),
            (
                "macro_iterations".into(),
                Json::Num(self.macro_iterations as f64),
            ),
            (
                "per_worker_updates".into(),
                u64s_to_json(&self.per_worker_updates),
            ),
        ])
    }

    /// Parses a record.
    ///
    /// # Errors
    /// Missing or mistyped fields.
    pub fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            problem: req_str(json, "problem")?,
            backend: req_str(json, "backend")?,
            delay: req_str(json, "delay")?,
            fidelity: req_str(json, "fidelity")?,
            status: req_str(json, "status")?,
            note: req_str(json, "note")?,
            seed: req_u64(json, "seed")?,
            steps: req_u64(json, "steps")?,
            wall_secs: req_f64(json, "wall_secs")?,
            sim_time: opt_u64(json, "sim_time")?,
            final_residual: req_f64(json, "final_residual")?,
            macro_iterations: req_u64(json, "macro_iterations")?,
            per_worker_updates: u64_vec(json, "per_worker_updates")?,
        })
    }
}

/// A whole gate run: schema version, run mode, and one record per
/// scenario cell.
#[derive(Debug, Clone, PartialEq)]
pub struct GateDoc {
    /// Schema version ([`SCHEMA_VERSION`] when produced by this build).
    pub schema_version: u64,
    /// `"quick"` or `"full"`.
    pub mode: String,
    /// The matrix cells.
    pub records: Vec<GateRecord>,
}

impl GateDoc {
    /// A new document at the current schema version.
    pub fn new(mode: &str, records: Vec<GateRecord>) -> Self {
        Self {
            schema_version: SCHEMA_VERSION,
            mode: mode.to_string(),
            records,
        }
    }

    /// Serializes the document.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "schema_version".into(),
                Json::Num(self.schema_version as f64),
            ),
            ("mode".into(), Json::Str(self.mode.clone())),
            (
                "records".into(),
                Json::Arr(self.records.iter().map(GateRecord::to_json).collect()),
            ),
        ])
    }

    /// Parses a document, rejecting any schema version other than
    /// [`SCHEMA_VERSION`].
    ///
    /// # Errors
    /// Schema mismatch, missing or mistyped fields.
    pub fn from_json(json: &Json) -> Result<Self, JsonError> {
        let schema_version = req_u64(json, "schema_version")?;
        if schema_version != SCHEMA_VERSION {
            return Err(JsonError::semantic(format!(
                "unsupported schema_version {schema_version} (this build reads {SCHEMA_VERSION}); \
                 regenerate the file with the current gate binary"
            )));
        }
        let records = req(json, "records")?
            .as_arr()
            .ok_or_else(|| JsonError::semantic("field `records` is not an array"))?
            .iter()
            .map(GateRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            schema_version,
            mode: req_str(json, "mode")?,
            records,
        })
    }

    /// Renders the document as pretty JSON (the on-disk format).
    pub fn render(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Parses document text.
    ///
    /// # Errors
    /// Syntax errors, schema mismatch, missing or mistyped fields.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> GateRecord {
        GateRecord {
            problem: "jacobi".into(),
            backend: "replay".into(),
            delay: "bounded".into(),
            fidelity: "exact".into(),
            status: "ok".into(),
            note: String::new(),
            seed: 2022,
            steps: 2500,
            wall_secs: 0.0123,
            sim_time: None,
            final_residual: 3.25e-11,
            macro_iterations: 311,
            per_worker_updates: vec![100, 101, 99],
        }
    }

    #[test]
    fn scalar_round_trips() {
        for text in [
            "null", "true", "false", "0", "-1", "3.5", "1e-12", "\"hi\"", "[]", "{}",
        ] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.render()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn u64_coercion_agrees_with_the_renderer() {
        let p53 = 2f64.powi(53);
        // Both sides share one predicate: `as_u64` is Some exactly when
        // the value is a nonnegative integer strictly below 2^53 that is
        // not -0.0 — the renderer's integer path. The historical
        // asymmetries are pinned: -0.0 renders as "-0" (sign preserved,
        // so it must NOT parse back as the integer 0), and 2^53 is
        // excluded on both sides (adjacent integers collide there).
        for (v, expect, rendered) in [
            (0.0, Some(0), "0"),
            (-0.0, None, "-0"),
            (1.0, Some(1), "1"),
            (p53 - 1.0, Some((1u64 << 53) - 1), "9007199254740991"),
            (p53, None, "9007199254740992"),
            (0.5, None, "0.5"),
            (-1.0, None, "-1"),
        ] {
            let n = Json::Num(v);
            assert_eq!(n.as_u64(), expect, "as_u64({v})");
            assert_eq!(n.render(), rendered, "render({v})");
            // Every form round-trips bit-exactly (including -0.0's sign).
            let back = Json::parse(rendered).unwrap();
            assert_eq!(
                back.as_f64().unwrap().to_bits(),
                v.to_bits(),
                "round trip of {v}"
            );
            // The parsed value classifies identically — render and parse
            // can never disagree about u64-ness again.
            assert_eq!(back.as_u64(), expect, "parsed as_u64({v})");
        }
    }

    #[test]
    fn float_round_trip_is_exact() {
        for v in [
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            2.2250738585072014e-308,
            -9.87e250,
            6.02214076e23,
            1.0 + f64::EPSILON,
            -0.0,
        ] {
            let rendered = Json::Num(v).render();
            let parsed = Json::parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(parsed.to_bits(), v.to_bits(), "{v} -> {rendered}");
        }
    }

    #[test]
    fn overflowing_number_literals_are_rejected() {
        for bad in ["1e999", "-1e999", "[1, 1e400]"] {
            let err = Json::parse(bad).unwrap_err();
            assert!(err.message.contains("out of range"), "{bad}: {err}");
        }
    }

    #[test]
    fn absurd_wall_secs_clamp_instead_of_panicking() {
        // wall_secs beyond Duration's range (finite, so it passes the
        // number parser) must clamp, not abort deserialization.
        let mut json = run_report_to_json(&sample_report());
        if let Json::Obj(fields) = &mut json {
            for (k, v) in fields.iter_mut() {
                if k == "wall_secs" {
                    *v = Json::Num(1e300);
                }
            }
        }
        let parsed = run_report_from_json(&json).unwrap();
        assert_eq!(parsed.wall, Duration::ZERO);
    }

    #[test]
    fn non_finite_samples_round_trip_as_nan() {
        // Non-finite sample values render as null and must read back as
        // NaN rather than failing the whole report parse.
        let mut report = sample_report();
        report.errors = vec![(10, f64::INFINITY), (20, 0.5)];
        report.residuals = vec![(5, f64::NAN)];
        // Through text: rendering is where non-finite becomes null.
        let text = run_report_to_json(&report).render();
        let parsed = run_report_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert!(parsed.errors[0].1.is_nan());
        assert_eq!(parsed.errors[1], (20, 0.5));
        assert!(parsed.residuals[0].1.is_nan());
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line1\nline2\ttab \"quoted\" back\\slash — ünïcødé \u{1}";
        let rendered = Json::Str(s.to_string()).render();
        assert_eq!(Json::parse(&rendered).unwrap().as_str().unwrap(), s);
        // Escaped surrogate pair.
        assert_eq!(
            Json::parse("\"\\ud83e\\udd80\"").unwrap().as_str().unwrap(),
            "🦀"
        );
    }

    #[test]
    fn malformed_surrogates_error_instead_of_panicking() {
        for bad in [
            "\"\\ud800\\u0041\"", // high surrogate chained to a non-low escape
            "\"\\ud800x\"",       // high surrogate followed by a plain char
            "\"\\udc00\"",        // lone low surrogate
            "\"\\ud800\"",        // lone high surrogate
        ] {
            let err = Json::parse(bad).unwrap_err();
            assert!(
                err.message.contains("unicode") || err.message.contains("escape"),
                "{bad}: {err}"
            );
        }
    }

    #[test]
    fn parse_errors_carry_position() {
        for bad in ["", "[1, 2", "{\"a\":}", "tru", "1 2", "{'a': 1}", "[1,]"] {
            let err = Json::parse(bad).unwrap_err();
            assert!(!err.message.is_empty(), "{bad}: {err}");
        }
    }

    #[test]
    fn object_order_is_preserved() {
        let text = r#"{"z": 1, "a": 2, "m": {"x": [1, 2, 3]}}"#;
        let v = Json::parse(text).unwrap();
        match &v {
            Json::Obj(fields) => {
                let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, ["z", "a", "m"]);
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn gate_record_round_trips() {
        let rec = sample_record();
        let parsed = GateRecord::from_json(&rec.to_json()).unwrap();
        assert_eq!(parsed, rec);
        // Through text as well.
        let text = rec.to_json().render();
        let parsed = GateRecord::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, rec);
    }

    #[test]
    fn gate_doc_round_trips_pretty_and_compact() {
        let mut with_sim = sample_record();
        with_sim.backend = "sim".into();
        with_sim.sim_time = Some(421);
        let doc = GateDoc::new("quick", vec![sample_record(), with_sim]);
        assert_eq!(GateDoc::parse(&doc.render()).unwrap(), doc);
        assert_eq!(GateDoc::parse(&doc.to_json().render()).unwrap(), doc);
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let mut doc = GateDoc::new("quick", vec![sample_record()]);
        doc.schema_version = SCHEMA_VERSION + 1;
        let err = GateDoc::parse(&doc.render()).unwrap_err();
        assert!(err.message.contains("schema_version"), "{err}");
    }

    #[test]
    fn run_report_round_trips() {
        let mut report = RunReport {
            backend: "flexible",
            final_x: vec![1.0, -0.25, 1.0 / 3.0],
            steps: 2000,
            macro_iterations: 57,
            errors: vec![(10, 0.5), (20, 0.125)],
            error_times: vec![11, 21],
            residuals: vec![(5, 1e-3)],
            final_residual: 4.75e-12,
            stopped_early: true,
            per_worker_updates: vec![7, 9],
            partial_publishes: 13,
            partial_reads: 4,
            constraint_checked: 21,
            constraint_violations: 2,
            trace: None,
            sim_time: Some(999),
            tenant: Some(5),
            job: Some(41),
            wall: Duration::ZERO,
        };
        report.set_wall_secs(0.25);
        let parsed = run_report_from_json(&run_report_to_json(&report)).unwrap();
        assert_eq!(parsed.backend, report.backend);
        assert_eq!(parsed.final_x, report.final_x);
        assert_eq!(parsed.steps, report.steps);
        assert_eq!(parsed.macro_iterations, report.macro_iterations);
        assert_eq!(parsed.errors, report.errors);
        assert_eq!(parsed.error_times, report.error_times);
        assert_eq!(parsed.residuals, report.residuals);
        assert_eq!(parsed.final_residual, report.final_residual);
        assert_eq!(parsed.stopped_early, report.stopped_early);
        assert_eq!(parsed.per_worker_updates, report.per_worker_updates);
        assert_eq!(parsed.partial_publishes, report.partial_publishes);
        assert_eq!(parsed.partial_reads, report.partial_reads);
        assert_eq!(parsed.constraint_checked, report.constraint_checked);
        assert_eq!(parsed.constraint_violations, report.constraint_violations);
        assert_eq!(parsed.sim_time, report.sim_time);
        assert_eq!(parsed.tenant, report.tenant);
        assert_eq!(parsed.job, report.job);
        assert_eq!(parsed.wall, report.wall);
        assert!(parsed.trace.is_none());
    }

    #[test]
    fn cluster_backend_name_round_trips() {
        // The sixth backend must survive the serialisation round trip
        // (canonical_backend_name knows it).
        let mut report = sample_report();
        report.backend = "cluster";
        report.constraint_checked = 7;
        report.constraint_violations = 2;
        let parsed = run_report_from_json(&run_report_to_json(&report)).unwrap();
        assert_eq!(parsed.backend, "cluster");
        assert_eq!(parsed.constraint_checked, 7);
        assert_eq!(parsed.constraint_violations, 2);
    }

    #[test]
    fn threaded_cluster_backend_name_round_trips() {
        // The seventh backend must survive the serialisation round trip
        // (canonical_backend_name knows it).
        let mut report = sample_report();
        report.backend = "threaded-cluster";
        let parsed = run_report_from_json(&run_report_to_json(&report)).unwrap();
        assert_eq!(parsed.backend, "threaded-cluster");
    }

    #[test]
    fn unknown_backend_name_canonicalises() {
        let mut json = run_report_to_json(
            &run_report_from_json(&run_report_to_json(&sample_report())).unwrap(),
        );
        if let Json::Obj(fields) = &mut json {
            fields[0].1 = Json::Str("mystery-engine".into());
        }
        assert_eq!(run_report_from_json(&json).unwrap().backend, "unknown");
    }

    fn sample_report() -> RunReport {
        RunReport {
            backend: "replay",
            final_x: vec![0.0],
            steps: 1,
            macro_iterations: 1,
            errors: vec![],
            error_times: vec![],
            residuals: vec![],
            final_residual: 0.0,
            stopped_early: false,
            per_worker_updates: vec![],
            partial_publishes: 0,
            partial_reads: 0,
            constraint_checked: 0,
            constraint_violations: 0,
            trace: None,
            sim_time: None,
            tenant: None,
            job: None,
            wall: Duration::ZERO,
        }
    }
}
