//! # asynciter-report
//!
//! Output plumbing for the experiment harness: CSV writers, ASCII line
//! charts and histograms, Gantt timeline rendering (the paper's Fig. 1 /
//! Fig. 2 as terminal art), aligned text tables, and hand-rolled JSON
//! serialization for the benchmark gate's machine-readable artefacts.
//! Everything is dependency-free (beyond the workspace's own core crate)
//! and writes either to `String`s or to files under a results directory.

#![deny(missing_docs)]
#![warn(clippy::all)]
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod ascii;
pub mod csv;
pub mod gantt;
pub mod json;
pub mod stream;
pub mod table;

pub use ascii::{line_chart, log_line_chart, ChartSeries};
pub use csv::CsvWriter;
pub use gantt::render_gantt;
pub use json::{GateDoc, GateRecord, Json, JsonError, SCHEMA_VERSION};
pub use stream::{hash_f64s, ServiceBatch, ServiceDoc, ServiceRecord};
pub use table::TextTable;
