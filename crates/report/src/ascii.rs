//! ASCII line charts and histograms.
//!
//! Good enough to eyeball convergence curves and delay envelopes in a
//! terminal; the CSV twins of every chart carry the precise numbers.

/// One named series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct ChartSeries {
    /// Legend name.
    pub name: String,
    /// Data points (need not be sorted; the chart bins by x).
    pub points: Vec<(f64, f64)>,
}

impl ChartSeries {
    /// Builds a series.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            name: name.into(),
            points,
        }
    }
}

const MARKS: &[char] = &['*', '+', 'o', 'x', '#', '@', '%', '&'];

fn render(series: &[ChartSeries], width: usize, height: usize, logy: bool, title: &str) -> String {
    let mut pts: Vec<(f64, f64, usize)> = Vec::new();
    for (si, s) in series.iter().enumerate() {
        for &(x, y) in &s.points {
            let y = if logy {
                if y > 0.0 {
                    y.log10()
                } else {
                    continue;
                }
            } else {
                y
            };
            if x.is_finite() && y.is_finite() {
                pts.push((x, y, si));
            }
        }
    }
    if pts.is_empty() {
        return format!("{title}\n(no finite data)\n");
    }
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y, _) in &pts {
        xmin = xmin.min(x);
        xmax = xmax.max(x);
        ymin = ymin.min(y);
        ymax = ymax.max(y);
    }
    if xmax == xmin {
        xmax = xmin + 1.0;
    }
    if ymax == ymin {
        ymax = ymin + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for &(x, y, si) in &pts {
        let col = (((x - xmin) / (xmax - xmin)) * (width - 1) as f64).round() as usize;
        let row = (((y - ymin) / (ymax - ymin)) * (height - 1) as f64).round() as usize;
        let r = height - 1 - row;
        grid[r][col.min(width - 1)] = MARKS[si % MARKS.len()];
    }
    let ylab = |v: f64| {
        if logy {
            format!("1e{v:>6.1}")
        } else {
            format!("{v:>9.3e}")
        }
    };
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (r, line) in grid.iter().enumerate() {
        let yv = ymax - (ymax - ymin) * r as f64 / (height - 1) as f64;
        let label = if r == 0 || r == height - 1 || r == height / 2 {
            ylab(yv)
        } else {
            " ".repeat(ylab(yv).len())
        };
        out.push_str(&format!("{label} |{}\n", line.iter().collect::<String>()));
    }
    let pad = " ".repeat(ylab(0.0).len());
    out.push_str(&format!("{pad} +{}\n", "-".repeat(width)));
    out.push_str(&format!("{pad}  x: [{xmin:.3e}, {xmax:.3e}]\n"));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!(
            "{pad}  {} = {}\n",
            MARKS[si % MARKS.len()],
            s.name
        ));
    }
    out
}

/// Renders a linear-scale line chart.
pub fn line_chart(series: &[ChartSeries], width: usize, height: usize, title: &str) -> String {
    render(series, width.max(16), height.max(4), false, title)
}

/// Renders a chart with a log₁₀ y-axis (non-positive values skipped) —
/// the natural scale for geometric convergence curves.
pub fn log_line_chart(series: &[ChartSeries], width: usize, height: usize, title: &str) -> String {
    render(series, width.max(16), height.max(4), true, title)
}

/// Renders a histogram of bucket counts as horizontal bars.
pub fn histogram(buckets: &[(String, u64)], width: usize, title: &str) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let max = buckets.iter().map(|&(_, c)| c).max().unwrap_or(0).max(1);
    let label_w = buckets.iter().map(|(l, _)| l.len()).max().unwrap_or(1);
    for (label, count) in buckets {
        let bar = (*count as usize * width.max(8)) / max as usize;
        out.push_str(&format!(
            "{label:>label_w$} | {}{} {count}\n",
            "█".repeat(bar),
            if bar == 0 && *count > 0 { "·" } else { "" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_chart_contains_marks_and_legend() {
        let s = vec![
            ChartSeries::new("up", (0..10).map(|i| (i as f64, i as f64)).collect()),
            ChartSeries::new(
                "down",
                (0..10).map(|i| (i as f64, 9.0 - i as f64)).collect(),
            ),
        ];
        let c = line_chart(&s, 40, 10, "test chart");
        assert!(c.contains("test chart"));
        assert!(c.contains('*'));
        assert!(c.contains('+'));
        assert!(c.contains("up"));
        assert!(c.contains("down"));
    }

    #[test]
    fn log_chart_skips_nonpositive() {
        let s = vec![ChartSeries::new(
            "decay",
            vec![(0.0, 1.0), (1.0, 0.1), (2.0, 0.0), (3.0, -1.0)],
        )];
        let c = log_line_chart(&s, 30, 8, "log");
        assert!(c.contains("decay"));
        // Two finite log points → chart rendered, no panic.
        assert!(c.contains("1e"));
    }

    #[test]
    fn empty_data_is_graceful() {
        let c = line_chart(&[ChartSeries::new("none", vec![])], 30, 8, "t");
        assert!(c.contains("no finite data"));
    }

    #[test]
    fn degenerate_ranges_handled() {
        let s = vec![ChartSeries::new("flat", vec![(1.0, 5.0), (1.0, 5.0)])];
        let c = line_chart(&s, 20, 5, "flat");
        assert!(c.contains('*'));
    }

    #[test]
    fn histogram_bars_scale() {
        let h = histogram(
            &[("a".into(), 10), ("b".into(), 5), ("c".into(), 0)],
            20,
            "hist",
        );
        assert!(h.contains("hist"));
        let lines: Vec<&str> = h.lines().collect();
        let bar_a = lines[1].matches('█').count();
        let bar_b = lines[2].matches('█').count();
        assert!(bar_a > bar_b);
        assert!(lines[3].contains(" 0"));
    }
}
