//! Minimal CSV output.
//!
//! Only what the experiment binaries need: a header, rows of
//! `Display`-able cells, quoting of cells containing separators, and
//! file/String sinks. Reading CSV is out of scope.

use std::fmt::Display;
use std::io::Write;
use std::path::Path;

/// An in-memory CSV document builder.
#[derive(Debug, Clone)]
pub struct CsvWriter {
    columns: usize,
    buf: String,
}

fn quote(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

impl CsvWriter {
    /// Starts a document with the given header.
    ///
    /// # Panics
    /// Panics on an empty header.
    pub fn new(header: &[&str]) -> Self {
        assert!(!header.is_empty(), "CsvWriter: empty header");
        let mut buf = String::new();
        buf.push_str(
            &header
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        buf.push('\n');
        Self {
            columns: header.len(),
            buf,
        }
    }

    /// Appends a row of displayable cells.
    ///
    /// # Panics
    /// Panics when the arity differs from the header.
    pub fn row<D: Display>(&mut self, cells: &[D]) -> &mut Self {
        assert_eq!(cells.len(), self.columns, "CsvWriter: row arity");
        let line = cells
            .iter()
            .map(|c| quote(&c.to_string()))
            .collect::<Vec<_>>()
            .join(",");
        self.buf.push_str(&line);
        self.buf.push('\n');
        self
    }

    /// Appends a row of pre-stringified cells (mixed types).
    ///
    /// # Panics
    /// Panics when the arity differs from the header.
    pub fn row_strings(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.columns, "CsvWriter: row arity");
        let line = cells.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",");
        self.buf.push_str(&line);
        self.buf.push('\n');
        self
    }

    /// The document text.
    pub fn as_str(&self) -> &str {
        &self.buf
    }

    /// Number of data rows written so far.
    pub fn rows_written(&self) -> usize {
        self.buf.matches('\n').count() - 1
    }

    /// Writes the document to a file, creating parent directories.
    ///
    /// # Errors
    /// I/O errors.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.buf.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_rows() {
        let mut w = CsvWriter::new(&["a", "b"]);
        w.row(&[1.5, 2.0]).row(&[3.0, 4.0]);
        assert_eq!(w.as_str(), "a,b\n1.5,2\n3,4\n");
        assert_eq!(w.rows_written(), 2);
    }

    #[test]
    fn quoting() {
        let mut w = CsvWriter::new(&["x,y", "plain"]);
        w.row_strings(&["has \"quotes\"".into(), "ok".into()]);
        assert_eq!(w.as_str(), "\"x,y\",plain\n\"has \"\"quotes\"\"\",ok\n");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        CsvWriter::new(&["a", "b"]).row(&[1.0]);
    }

    #[test]
    fn save_roundtrip() {
        let dir = std::env::temp_dir().join("asynciter_csv_test");
        let path = dir.join("sub").join("t.csv");
        let mut w = CsvWriter::new(&["v"]);
        w.row(&[42]);
        w.save(&path).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read, "v\n42\n");
        std::fs::remove_dir_all(&dir).ok();
    }
}
