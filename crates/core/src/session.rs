//! The unified `Session` execution API.
//!
//! The paper studies *one* iterate sequence — Eq. (1) with unbounded
//! delays, out-of-order labels and flexible partial updates — but the
//! workspace grew seven ways of running it (deterministic replay,
//! flexible communication, free-running threads, barrier-synchronous
//! threads, the discrete-event simulator, and two message-passing
//! clusters: deterministic and genuinely concurrent), each with its own
//! config and result types. This module collapses them behind three
//! small pieces:
//!
//! - [`Problem`] — what is solved: the operator, the initial iterate and
//!   (for experiments) the known fixed point.
//! - [`RunControl`] — how long and what to observe: step budget, error /
//!   residual sampling, stopping rule, trace recording, seed, and the
//!   schedule for replay-style backends.
//! - [`Backend`] — *where* Eq. (1) executes. [`Replay`] and [`Flexible`]
//!   live here; `SharedMem { threads }`, `Barrier { threads }`, the
//!   deterministic sharded message-passing `Cluster { workers, .. }` and
//!   its genuinely concurrent sibling `ThreadedCluster { workers, .. }`
//!   in `asynciter-runtime`; `Sim(config)` in `asynciter-sim`. Every
//!   backend populates the same [`RunReport`].
//!
//! The fluent [`Session`] builder wires the three together:
//!
//! ```
//! use asynciter_core::session::{RecordMode, Replay, Session};
//! use asynciter_models::schedule::ChaoticBounded;
//! use asynciter_opt::linear::JacobiOperator;
//! use asynciter_numerics::sparse::tridiagonal;
//!
//! let op = JacobiOperator::new(tridiagonal(8, 4.0, -1.0), vec![1.0; 8]).unwrap();
//! let report = Session::new(&op)
//!     .steps(2_000)
//!     .schedule(ChaoticBounded::new(8, 2, 4, 10, false, 7))
//!     .record(RecordMode::Full)
//!     .backend(Replay)
//!     .run()
//!     .unwrap();
//! assert_eq!(report.steps, 2_000);
//! assert!(report.macro_iterations > 0);
//! ```
//!
//! Because every backend speaks [`RunReport`], same-problem/any-backend
//! comparisons (async vs sync vs simulated speedup sweeps) are one-liners:
//! build the session once per backend and diff the reports.

use crate::engine::{EngineConfig, ReplayEngine};
use crate::error::CoreError;
use crate::flexible::{FlexibleConfig, FlexibleEngine};
use crate::stopping::StoppingRule;
use asynciter_models::macroiter::macro_iterations;
use asynciter_models::schedule::{ScheduleGen, SyncJacobi};
use asynciter_models::trace::{LabelStore, Trace};
use asynciter_numerics::norm::WeightedMaxNorm;
use asynciter_opt::traits::Operator;
use std::time::Duration;

/// What is being solved: the fixed-point operator plus starting data.
pub struct Problem<'a> {
    /// The operator `F` of Eq. (1).
    pub op: &'a dyn Operator,
    /// Initial iterate `x(0)`.
    pub x0: Vec<f64>,
    /// Known fixed point `x*` (experiments only: error recording and
    /// oracle stopping; the algorithms never read it).
    pub xstar: Option<Vec<f64>>,
}

impl Problem<'_> {
    /// Dimension `n`.
    pub fn n(&self) -> usize {
        self.op.dim()
    }
}

/// How much trace information a run keeps (unifies the engines'
/// `LabelStore` / `TraceRecord` knobs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecordMode {
    /// No trace in the report (fastest; macro-iterations still counted
    /// where the backend computes a trace anyway).
    #[default]
    Off,
    /// Active sets and minimum labels only.
    MinOnly,
    /// Full label vectors per step.
    Full,
}

impl RecordMode {
    /// The label retention used when a trace is materialised.
    pub fn label_store(self) -> LabelStore {
        match self {
            RecordMode::Full => LabelStore::Full,
            _ => LabelStore::MinOnly,
        }
    }

    /// Whether the report should carry the trace.
    pub fn keeps_trace(self) -> bool {
        self != RecordMode::Off
    }
}

/// Backend-independent run controls.
///
/// `schedule` is the explicit `(𝒮, ℒ)` realisation consumed by
/// schedule-driven backends ([`Replay`], [`Flexible`]); thread and
/// simulator backends generate their own schedules and ignore it. It is
/// `&mut` state: backends `take()` it while running.
pub struct RunControl<'a> {
    /// Step budget: iterations (replay/flexible), block updates
    /// (shared-memory), sweeps (barrier) or global iterations (sim).
    pub max_steps: u64,
    /// Record `‖x(j) − x*‖_∞` every this many steps (0 = never; needs
    /// `Problem::xstar`).
    pub error_every: u64,
    /// Record `‖x − F(x)‖_∞` every this many steps (0 = never).
    pub residual_every: u64,
    /// Optional online stopping rule.
    pub stopping: Option<StoppingRule>,
    /// Trace retention.
    pub record: RecordMode,
    /// Seed for backends with internal randomness. `None` when the user
    /// never called [`Session::seed`]: backends with their own configured
    /// seed (e.g. `Sim`) keep it, others default to 0. `Some(s)` always
    /// overrides.
    pub seed: Option<u64>,
    /// Schedule for schedule-driven backends.
    pub schedule: Option<Box<dyn ScheduleGen + 'a>>,
}

impl<'a> RunControl<'a> {
    /// Removes and returns the schedule, defaulting to the synchronous
    /// Jacobi steering over `n` components when none was supplied.
    pub fn take_schedule(&mut self, n: usize) -> Box<dyn ScheduleGen + 'a> {
        self.schedule
            .take()
            .unwrap_or_else(|| Box::new(SyncJacobi::new(n)))
    }
}

/// The one result type every backend populates.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Name of the backend that produced this report.
    pub backend: &'static str,
    /// Final iterate (consensus vector for distributed backends).
    pub final_x: Vec<f64>,
    /// Steps actually executed, in the backend's step unit (see
    /// [`RunControl::max_steps`]).
    pub steps: u64,
    /// Completed macro-iterations (Definition 2) of the executed
    /// schedule, when the backend materialised a trace; 0 otherwise.
    pub macro_iterations: u64,
    /// `(j, ‖x(j) − x*‖_∞)` samples (empty unless requested).
    pub errors: Vec<(u64, f64)>,
    /// Simulated completion time of each error sample, same indexing as
    /// `errors` (simulator backend only; empty elsewhere). Lets
    /// experiments convert convergence into simulated wall-clock.
    pub error_times: Vec<u64>,
    /// `(j, ‖x(j) − F(x(j))‖_∞)` samples (empty unless requested).
    pub residuals: Vec<(u64, f64)>,
    /// Fixed-point residual of `final_x`.
    pub final_residual: f64,
    /// True when a stopping rule (or residual target) fired early.
    pub stopped_early: bool,
    /// Updates per worker (thread backends; empty otherwise).
    pub per_worker_updates: Vec<u64>,
    /// Mid-phase partial publishes / partial sends (flexible
    /// communication; 0 for backends without partials).
    pub partial_publishes: u64,
    /// Reads that consumed (upgraded to) a published partial value
    /// (flexible backend only; thread/sim backends apply partials
    /// directly to shared or local state and report 0).
    pub partial_reads: u64,
    /// Constraint-(3) checks performed (flexible backend with a known
    /// fixed point; 0 elsewhere).
    pub constraint_checked: u64,
    /// Constraint-(3) violations observed — prevented (fallback to the
    /// labelled value) when enforcement is on, merely counted otherwise.
    pub constraint_violations: u64,
    /// The recorded trace (when [`RecordMode`] keeps it).
    pub trace: Option<Trace>,
    /// Simulated end time in ticks (simulator backend only).
    pub sim_time: Option<u64>,
    /// Owning tenant, when the run was executed by the multi-tenant
    /// service layer (`None` for solo sessions).
    pub tenant: Option<u64>,
    /// Service job id, assigned in admission order (`None` for solo
    /// sessions).
    pub job: Option<u64>,
    /// Wall-clock time: the backend's parallel-section time when it
    /// measures one, otherwise the whole `Session::run` call.
    pub wall: Duration,
}

/// Maps a backend name to its canonical `&'static str` form — the
/// seven built-in engines, or `"unknown"` for anything else.
/// Serializers use this to rebuild [`RunReport::backend`] from parsed
/// text without leaking.
pub fn canonical_backend_name(name: &str) -> &'static str {
    match name {
        "replay" => "replay",
        "flexible" => "flexible",
        "shared-mem" => "shared-mem",
        "barrier" => "barrier",
        "sim" => "sim",
        "cluster" => "cluster",
        "threaded-cluster" => "threaded-cluster",
        _ => "unknown",
    }
}

impl RunReport {
    /// Wall-clock time in seconds — the serialization-friendly view of
    /// [`RunReport::wall`].
    pub fn wall_secs(&self) -> f64 {
        self.wall.as_secs_f64()
    }

    /// Rebuilds [`RunReport::wall`] from seconds (deserialization helper;
    /// out-of-range input — non-finite, negative, or overflowing
    /// `Duration` — clamps to zero, never panics).
    pub fn set_wall_secs(&mut self, secs: f64) {
        self.wall = Duration::try_from_secs_f64(secs).unwrap_or(Duration::ZERO);
    }

    /// Stamps service ownership onto the report (builder-style; used by
    /// the service layer after the backend returns).
    #[must_use]
    pub fn with_ids(mut self, tenant: u64, job: u64) -> Self {
        self.tenant = Some(tenant);
        self.job = Some(job);
        self
    }

    /// `‖final_x − xstar‖_∞`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn final_error(&self, xstar: &[f64]) -> f64 {
        asynciter_numerics::vecops::max_abs_diff(&self.final_x, xstar)
    }

    /// First recorded step whose error sample is `≤ eps` (requires error
    /// recording).
    pub fn steps_to_error(&self, eps: f64) -> Option<u64> {
        self.errors
            .iter()
            .find(|&&(_, e)| e <= eps)
            .map(|&(j, _)| j)
    }

    /// Simulated time at which the error first dropped to `≤ eps`
    /// (simulator backend with error recording).
    pub fn sim_time_to_error(&self, eps: f64) -> Option<u64> {
        self.errors
            .iter()
            .zip(&self.error_times)
            .find(|((_, e), _)| *e <= eps)
            .map(|(_, &t)| t)
    }
}

/// Counts completed macro-iterations of a trace (0 for `None`/empty).
pub fn macro_count(trace: Option<&Trace>) -> u64 {
    match trace {
        Some(t) if !t.is_empty() => macro_iterations(t).count() as u64,
        _ => 0,
    }
}

/// An execution engine for Eq. (1). Implementations translate the
/// backend-independent [`Problem`] + [`RunControl`] into their native
/// configuration, run, and translate the native result into a
/// [`RunReport`].
pub trait Backend {
    /// Short backend name for reports and error messages.
    fn name(&self) -> &'static str;

    /// Executes the iteration.
    ///
    /// # Errors
    /// Dimension/parameter validation failures, divergence, or a control
    /// the backend cannot honour (reported, never silently dropped).
    fn run(&mut self, problem: &Problem<'_>, ctl: &mut RunControl<'_>) -> crate::Result<RunReport>;
}

impl Backend for Box<dyn Backend + '_> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn run(&mut self, problem: &Problem<'_>, ctl: &mut RunControl<'_>) -> crate::Result<RunReport> {
        (**self).run(problem, ctl)
    }
}

/// Builds a [`CoreError`] for a control option a backend does not
/// support.
pub fn unsupported(backend: &'static str, what: &str) -> CoreError {
    CoreError::Backend {
        backend,
        message: format!("{what} is not supported by this backend"),
    }
}

// ---------------------------------------------------------------------------
// The fluent builder
// ---------------------------------------------------------------------------

/// Fluent builder for a single run: problem, controls, backend.
///
/// Unset fields get conservative defaults: `x0 = 0`, 10 000 steps, no
/// recording, no stopping rule, and the [`Replay`] backend over a
/// synchronous schedule — so the shortest possible session is just an
/// operator and a `run()`:
///
/// ```
/// use asynciter_core::session::Session;
/// use asynciter_opt::linear::JacobiOperator;
/// use asynciter_numerics::sparse::tridiagonal;
///
/// let op = JacobiOperator::new(tridiagonal(8, 4.0, -1.0), vec![1.0; 8]).unwrap();
/// let report = Session::new(&op).run().unwrap();
/// assert_eq!(report.backend, "replay");
/// assert!(report.final_residual < 1e-10);
/// ```
///
/// See the [module docs](self) for a complete example with an explicit
/// schedule, recording, and backend selection.
pub struct Session<'a> {
    op: &'a dyn Operator,
    x0: Option<Vec<f64>>,
    xstar: Option<Vec<f64>>,
    max_steps: u64,
    error_every: u64,
    residual_every: u64,
    stopping: Option<StoppingRule>,
    record: RecordMode,
    seed: Option<u64>,
    schedule: Option<Box<dyn ScheduleGen + 'a>>,
    backend: Option<Box<dyn Backend + 'a>>,
}

impl<'a> Session<'a> {
    /// Starts a session solving the fixed point of `op`.
    pub fn new(op: &'a dyn Operator) -> Self {
        Self {
            op,
            x0: None,
            xstar: None,
            max_steps: 10_000,
            error_every: 0,
            residual_every: 0,
            stopping: None,
            record: RecordMode::Off,
            seed: None,
            schedule: None,
            backend: None,
        }
    }

    /// Sets the initial iterate (default: the zero vector).
    #[must_use]
    pub fn x0(mut self, x0: impl Into<Vec<f64>>) -> Self {
        self.x0 = Some(x0.into());
        self
    }

    /// Declares the known fixed point (enables error recording and
    /// oracle stopping).
    #[must_use]
    pub fn xstar(mut self, xstar: impl Into<Vec<f64>>) -> Self {
        self.xstar = Some(xstar.into());
        self
    }

    /// Sets the step budget (see [`RunControl::max_steps`] for units).
    #[must_use]
    pub fn steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Installs the schedule `(𝒮, ℒ)` for schedule-driven backends.
    #[must_use]
    pub fn schedule(mut self, gen: impl ScheduleGen + 'a) -> Self {
        self.schedule = Some(Box::new(gen));
        self
    }

    /// Injects a recorded trace as the schedule *and* the step budget —
    /// the replay hook used by differential testing: any trace recorded
    /// from another backend (or loaded from a corpus file) re-executes
    /// through [`Replay`] exactly, step for step, label for label.
    ///
    /// Equivalent to `.schedule(RecordedSchedule::new(trace)?)` followed
    /// by `.steps(trace.len())`.
    ///
    /// # Errors
    /// [`asynciter_models::ModelError::LabelsNotStored`] for min-only
    /// traces, [`asynciter_models::ModelError::EmptyTrace`] for empty
    /// ones (propagated as [`CoreError::Model`]).
    pub fn replay_trace(mut self, trace: Trace) -> crate::Result<Self> {
        let steps = trace.len() as u64;
        let gen = asynciter_models::schedule::RecordedSchedule::new(trace)?;
        self.schedule = Some(Box::new(gen));
        self.max_steps = steps;
        Ok(self)
    }

    /// Installs an online stopping rule.
    #[must_use]
    pub fn stopping(mut self, rule: StoppingRule) -> Self {
        self.stopping = Some(rule);
        self
    }

    /// Sets the trace retention mode.
    #[must_use]
    pub fn record(mut self, mode: RecordMode) -> Self {
        self.record = mode;
        self
    }

    /// Samples `‖x(j) − x*‖_∞` every `every` steps (requires
    /// [`Session::xstar`]).
    #[must_use]
    pub fn error_every(mut self, every: u64) -> Self {
        self.error_every = every;
        self
    }

    /// Samples the fixed-point residual every `every` steps.
    #[must_use]
    pub fn residual_every(mut self, every: u64) -> Self {
        self.residual_every = every;
        self
    }

    /// Sets the seed for backends with internal randomness (always
    /// overrides a backend-configured seed).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Selects the backend (default: [`Replay`]).
    #[must_use]
    pub fn backend(mut self, backend: impl Backend + 'a) -> Self {
        self.backend = Some(Box::new(backend));
        self
    }

    /// Executes the run.
    ///
    /// # Errors
    /// Whatever the backend reports: validation failures, divergence, or
    /// unsupported controls.
    pub fn run(self) -> crate::Result<RunReport> {
        let n = self.op.dim();
        let problem = Problem {
            op: self.op,
            x0: self.x0.unwrap_or_else(|| vec![0.0; n]),
            xstar: self.xstar,
        };
        let mut ctl = RunControl {
            max_steps: self.max_steps,
            error_every: self.error_every,
            residual_every: self.residual_every,
            stopping: self.stopping,
            record: self.record,
            seed: self.seed,
            schedule: self.schedule,
        };
        let mut backend: Box<dyn Backend + 'a> = self.backend.unwrap_or(Box::new(Replay));
        let start = std::time::Instant::now();
        let mut report = backend.run(&problem, &mut ctl)?;
        if report.wall == Duration::ZERO {
            report.wall = start.elapsed();
        }
        Ok(report)
    }
}

// ---------------------------------------------------------------------------
// Core backends: Replay (Definition 1) and Flexible (Definition 3)
// ---------------------------------------------------------------------------

/// The deterministic Definition-1 replay backend
/// ([`ReplayEngine`] behind the [`Backend`] interface).
#[derive(Debug, Clone, Copy, Default)]
pub struct Replay;

impl Backend for Replay {
    fn name(&self) -> &'static str {
        "replay"
    }

    fn run(&mut self, problem: &Problem<'_>, ctl: &mut RunControl<'_>) -> crate::Result<RunReport> {
        let mut gen = ctl.take_schedule(problem.n());
        let cfg = EngineConfig {
            num_steps: ctl.max_steps,
            record_labels: ctl.record.label_store(),
            error_every: ctl.error_every,
            residual_every: ctl.residual_every,
            stopping: ctl.stopping.clone(),
        };
        let start = std::time::Instant::now();
        let res = ReplayEngine::run(
            problem.op,
            &problem.x0,
            gen.as_mut(),
            &cfg,
            problem.xstar.as_deref(),
        )?;
        let wall = start.elapsed();
        let final_residual = problem.op.residual_inf(&res.final_x);
        let macro_iterations = macro_count(Some(&res.trace));
        Ok(RunReport {
            backend: self.name(),
            final_x: res.final_x,
            steps: res.steps_run,
            macro_iterations,
            errors: res.errors,
            error_times: Vec::new(),
            residuals: res.residuals,
            final_residual,
            stopped_early: res.stopped_early,
            per_worker_updates: Vec::new(),
            partial_publishes: 0,
            partial_reads: 0,
            constraint_checked: 0,
            constraint_violations: 0,
            trace: ctl.record.keeps_trace().then_some(res.trace),
            sim_time: None,
            tenant: None,
            job: None,
            wall,
        })
    }
}

/// The Definition-3 flexible-communication backend
/// ([`FlexibleEngine`] behind the [`Backend`] interface).
///
/// `m` inner iterations run per outer update; with `partial` set the
/// in-progress block is published halfway (override with
/// `publish_period`) and readers may consume those partials.
/// Constructible with functional-update syntax:
/// `Flexible { m: 4, partial: true, ..Flexible::default() }`.
#[derive(Debug, Clone)]
pub struct Flexible {
    /// Inner iterations `m ≥ 1` per outer update.
    pub m: usize,
    /// Publish mid-phase partials (flexible communication); `false`
    /// degenerates to the standard asynchronous iteration.
    pub partial: bool,
    /// Probability that a read upgrades to an available fresher partial.
    pub partial_prob: f64,
    /// Publish period override (default: `m/2` when `partial`, disabled
    /// otherwise).
    pub publish_period: Option<usize>,
    /// Enforce constraint (3) against the known fixed point (certified
    /// Definition-3 iteration).
    pub enforce_constraint: bool,
    /// The weighted max norm `‖·‖_u` of constraint (3) (default:
    /// uniform weights).
    pub norm: Option<WeightedMaxNorm>,
}

impl Default for Flexible {
    fn default() -> Self {
        Self {
            m: 1,
            partial: true,
            partial_prob: 1.0,
            publish_period: None,
            enforce_constraint: false,
            norm: None,
        }
    }
}

impl Backend for Flexible {
    fn name(&self) -> &'static str {
        "flexible"
    }

    fn run(&mut self, problem: &Problem<'_>, ctl: &mut RunControl<'_>) -> crate::Result<RunReport> {
        if ctl.stopping.is_some() {
            return Err(unsupported(self.name(), "a stopping rule"));
        }
        if ctl.residual_every > 0 {
            return Err(unsupported(self.name(), "residual sampling"));
        }
        if !self.partial && self.publish_period.is_some() {
            return Err(CoreError::InvalidParameter {
                name: "publish_period",
                message: "set together with partial: false — a partial-free baseline \
                          cannot publish mid-phase"
                    .into(),
            });
        }
        let n = problem.n();
        let mut gen = ctl.take_schedule(n);
        let publish_period = self.publish_period.unwrap_or(if self.partial {
            (self.m / 2).max(1)
        } else {
            // publish_period == m disables mid-phase publishing.
            self.m.max(1)
        });
        let cfg = FlexibleConfig {
            num_steps: ctl.max_steps,
            inner_steps: self.m,
            publish_period,
            partial_prob: self.partial_prob,
            seed: ctl.seed.unwrap_or(0),
            record_labels: ctl.record.label_store(),
            error_every: ctl.error_every,
            enforce_constraint: self.enforce_constraint,
        };
        let norm = match &self.norm {
            Some(u) => u.clone(),
            None => WeightedMaxNorm::uniform(n),
        };
        let start = std::time::Instant::now();
        let res = FlexibleEngine::run(
            problem.op,
            &problem.x0,
            gen.as_mut(),
            &cfg,
            &norm,
            problem.xstar.as_deref(),
        )?;
        let wall = start.elapsed();
        let final_residual = problem.op.residual_inf(&res.final_x);
        let macro_iterations = macro_count(Some(&res.trace));
        Ok(RunReport {
            backend: self.name(),
            final_x: res.final_x,
            steps: ctl.max_steps,
            macro_iterations,
            errors: res.errors,
            error_times: Vec::new(),
            residuals: Vec::new(),
            final_residual,
            stopped_early: false,
            per_worker_updates: Vec::new(),
            partial_publishes: res.publishes,
            partial_reads: res.partial_reads,
            constraint_checked: res.constraint_checked,
            constraint_violations: res.constraint_violations,
            trace: ctl.record.keeps_trace().then_some(res.trace),
            sim_time: None,
            tenant: None,
            job: None,
            wall,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asynciter_models::schedule::{ChaoticBounded, SyncJacobi};
    use asynciter_numerics::sparse::tridiagonal;
    use asynciter_numerics::vecops;
    use asynciter_opt::linear::JacobiOperator;

    fn jacobi(n: usize) -> JacobiOperator {
        JacobiOperator::new(tridiagonal(n, 4.0, -1.0), vec![1.0; n]).unwrap()
    }

    #[test]
    fn session_defaults_run_replay_sync() {
        let op = jacobi(6);
        let report = Session::new(&op).steps(50).run().unwrap();
        assert_eq!(report.backend, "replay");
        assert_eq!(report.steps, 50);
        // Synchronous default schedule: one macro-iteration per step.
        assert_eq!(report.macro_iterations, 50);
        assert!(report.final_residual < 1e-10);
        assert!(report.trace.is_none(), "RecordMode::Off keeps no trace");
        assert!(report.wall > Duration::ZERO);
    }

    #[test]
    fn session_matches_legacy_replay_exactly() {
        let op = jacobi(8);
        let report = Session::new(&op)
            .steps(500)
            .schedule(ChaoticBounded::new(8, 2, 4, 10, false, 3))
            .record(RecordMode::Full)
            .backend(Replay)
            .run()
            .unwrap();
        let mut gen = ChaoticBounded::new(8, 2, 4, 10, false, 3);
        let legacy =
            ReplayEngine::run(&op, &[0.0; 8], &mut gen, &EngineConfig::fixed(500), None).unwrap();
        assert_eq!(report.final_x, legacy.final_x);
        assert_eq!(report.trace.unwrap().len(), legacy.trace.len());
    }

    #[test]
    fn session_error_recording_and_stopping() {
        let op = jacobi(6);
        let xstar = op.solve_dense_spd().unwrap();
        let report = Session::new(&op)
            .steps(100_000)
            .schedule(SyncJacobi::new(6))
            .xstar(xstar.clone())
            .error_every(5)
            .stopping(StoppingRule::Residual {
                eps: 1e-10,
                check_every: 5,
            })
            .run()
            .unwrap();
        assert!(report.stopped_early);
        assert!(report.steps < 100_000);
        assert!(!report.errors.is_empty());
        assert!(report.final_error(&xstar) < 1e-9);
    }

    #[test]
    fn flexible_backend_runs_and_counts_partials() {
        let op = jacobi(12);
        let xstar = op.solve_dense_spd().unwrap();
        let report = Session::new(&op)
            .steps(2_000)
            .schedule(asynciter_models::schedule::BlockRoundRobin::new(
                asynciter_models::Partition::blocks(12, 3).unwrap(),
                4,
            ))
            .xstar(xstar.clone())
            .backend(Flexible {
                m: 4,
                partial: true,
                ..Flexible::default()
            })
            .run()
            .unwrap();
        assert_eq!(report.backend, "flexible");
        assert!(report.partial_publishes > 0);
        assert!(report.partial_reads > 0);
        assert!(report.final_error(&xstar) < 1e-10);
    }

    #[test]
    fn flexible_without_partials_matches_flexible_engine_baseline() {
        let op = jacobi(8);
        let report = Session::new(&op)
            .steps(200)
            .backend(Flexible {
                m: 3,
                partial: false,
                ..Flexible::default()
            })
            .run()
            .unwrap();
        // publish_period = m disables mid-phase publishing entirely.
        assert_eq!(report.partial_publishes, 0);
        assert_eq!(report.partial_reads, 0);
    }

    #[test]
    fn unsupported_controls_are_reported_not_dropped() {
        let op = jacobi(4);
        let err = Session::new(&op)
            .steps(10)
            .stopping(StoppingRule::Residual {
                eps: 1e-3,
                check_every: 1,
            })
            .backend(Flexible::default())
            .run()
            .unwrap_err();
        assert!(matches!(err, CoreError::Backend { .. }), "{err}");
    }

    #[test]
    fn record_off_still_counts_macro_iterations() {
        let op = jacobi(6);
        let report = Session::new(&op)
            .steps(300)
            .schedule(ChaoticBounded::new(6, 1, 3, 8, false, 9))
            .run()
            .unwrap();
        assert!(report.trace.is_none());
        assert!(report.macro_iterations > 0);
    }

    #[test]
    fn replay_trace_reexecutes_bitwise() {
        let op = jacobi(8);
        let first = Session::new(&op)
            .steps(400)
            .schedule(ChaoticBounded::new(8, 1, 4, 9, false, 21))
            .record(RecordMode::Full)
            .run()
            .unwrap();
        let replayed = Session::new(&op)
            .replay_trace(first.trace.clone().unwrap())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(first.final_x, replayed.final_x);
        assert_eq!(first.steps, replayed.steps);
    }

    #[test]
    fn replay_trace_rejects_unusable_traces() {
        let op = jacobi(4);
        let empty = Trace::new(4, LabelStore::Full);
        assert!(matches!(
            Session::new(&op).replay_trace(empty),
            Err(CoreError::Model(_))
        ));
        let min_only =
            asynciter_models::schedule::record(&mut SyncJacobi::new(4), 5, LabelStore::MinOnly);
        assert!(Session::new(&op).replay_trace(min_only).is_err());
    }

    #[test]
    fn reports_are_deterministic_for_deterministic_backends() {
        let op = jacobi(6);
        let run = || {
            Session::new(&op)
                .steps(400)
                .schedule(ChaoticBounded::new(6, 1, 3, 8, false, 7))
                .run()
                .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.final_x, b.final_x);
        assert_eq!(a.macro_iterations, b.macro_iterations);
        let diff = vecops::max_abs_diff(&a.final_x, &b.final_x);
        assert_eq!(diff, 0.0);
    }
}
