//! The Definition-3 flexible-communication engine.
//!
//! Flexible communication (paper §IV, refs \[9\], \[23\], \[24\]) lets updates
//! consume *partial updates*: values published mid-computation (one-sided
//! `put()`s from inside an updating phase) rather than only the values
//! `x_i(l_i(j))` labelled by completed iterations. Definition 3 replaces
//! the read vector by any `x̃(j)` satisfying the weighted-max-norm
//! constraint (3):
//!
//! ```text
//! ‖x̃_i(j) − x_i*‖_i / u_i  ≤  ‖x(l(j)) − x*‖_u .
//! ```
//!
//! [`FlexibleEngine`] realises this concretely:
//!
//! - each outer update runs `m` **inner iterations** of the operator on
//!   its active block (off-block components frozen at the assembled read
//!   vector) — the "operators G generated via an iterative process" of
//!   the paper;
//! - every `publish_period` inner steps the in-progress block values are
//!   **published** as partial updates;
//! - later reads of a component may *upgrade* from their labelled value
//!   `x_h(l_h(j))` to the freshest published *partial* (with
//!   configurable probability, modelling whether the one-sided transfer
//!   arrived) — finals still travel through the ordinary labelled
//!   exchange, so partials are a strictly additional fast channel;
//! - when the fixed point is known, every upgraded read is checked
//!   against constraint (3); `enforce_constraint` falls back to the
//!   labelled value on violation, making the run a *certified*
//!   Definition-3 iteration.

use crate::engine::History;
use crate::error::CoreError;
use asynciter_models::schedule::{ScheduleGen, StepBuf};
use asynciter_models::trace::{LabelStore, Trace};
use asynciter_numerics::norm::WeightedMaxNorm;
use asynciter_opt::traits::Operator;
use rand::RngExt;

/// Configuration of a flexible-communication run.
#[derive(Debug, Clone)]
pub struct FlexibleConfig {
    /// Maximum number of outer iterations.
    pub num_steps: u64,
    /// Inner iterations `m ≥ 1` per outer update (the approximate
    /// operator `G ≈ F^m` on the active block).
    pub inner_steps: usize,
    /// Publish partial block values every this many inner steps
    /// (`≥ inner_steps` disables mid-phase publishing — the standard
    /// asynchronous baseline).
    pub publish_period: usize,
    /// Probability that a read upgrades to an available fresher partial.
    pub partial_prob: f64,
    /// RNG seed for upgrade decisions.
    pub seed: u64,
    /// Label retention of the recorded trace (labels record the
    /// *effective* provenance step of each read, partials included).
    pub record_labels: LabelStore,
    /// Record `‖x(j) − x*‖_∞` every this many outer steps (0 = never).
    pub error_every: u64,
    /// When true (and `xstar` is provided), reads that would violate
    /// constraint (3) fall back to their labelled value.
    pub enforce_constraint: bool,
}

impl FlexibleConfig {
    /// A default configuration: `m` inner steps, publish halfway, always
    /// consume available partials.
    pub fn new(num_steps: u64, inner_steps: usize) -> Self {
        Self {
            num_steps,
            inner_steps,
            publish_period: (inner_steps / 2).max(1),
            partial_prob: 1.0,
            seed: 0,
            record_labels: LabelStore::Full,
            error_every: 0,
            enforce_constraint: false,
        }
    }

    /// Sets the publish period.
    pub fn with_publish_period(mut self, p: usize) -> Self {
        self.publish_period = p;
        self
    }

    /// Sets the upgrade probability.
    pub fn with_partial_prob(mut self, q: f64) -> Self {
        self.partial_prob = q;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables error recording.
    pub fn with_error_every(mut self, every: u64) -> Self {
        self.error_every = every;
        self
    }

    /// Enables constraint-(3) enforcement.
    pub fn with_enforcement(mut self) -> Self {
        self.enforce_constraint = true;
        self
    }
}

/// Result of a flexible-communication run.
#[derive(Debug, Clone)]
pub struct FlexibleRunResult {
    /// Recorded trace with *effective* read labels.
    pub trace: Trace,
    /// Final iterate.
    pub final_x: Vec<f64>,
    /// `(j, ‖x(j) − x*‖_∞)` samples.
    pub errors: Vec<(u64, f64)>,
    /// Number of reads that consumed a partial (upgraded) value.
    pub partial_reads: u64,
    /// Number of mid-phase publishes performed.
    pub publishes: u64,
    /// Constraint-(3) checks performed (0 when `xstar` unknown).
    pub constraint_checked: u64,
    /// Constraint-(3) violations observed (before enforcement).
    pub constraint_violations: u64,
}

/// The Definition-3 engine. See module docs.
#[derive(Debug, Default)]
pub struct FlexibleEngine;

impl FlexibleEngine {
    /// Runs the flexible asynchronous iteration `(G, x(0), 𝒮, ℒ)`.
    ///
    /// `norm` is the weighted max norm `‖·‖_u` of constraint (3);
    /// `xstar` the known fixed point used for (3) checks and error
    /// recording (checks are skipped when absent).
    ///
    /// # Errors
    /// Dimension mismatches or invalid configuration.
    pub fn run(
        op: &dyn Operator,
        x0: &[f64],
        gen: &mut dyn ScheduleGen,
        cfg: &FlexibleConfig,
        norm: &WeightedMaxNorm,
        xstar: Option<&[f64]>,
    ) -> crate::Result<FlexibleRunResult> {
        let n = op.dim();
        if x0.len() != n || gen.n() != n || norm.dim() != n {
            return Err(CoreError::DimensionMismatch {
                expected: n,
                actual: if x0.len() != n {
                    x0.len()
                } else if gen.n() != n {
                    gen.n()
                } else {
                    norm.dim()
                },
                context: "FlexibleEngine::run",
            });
        }
        if cfg.num_steps == 0 || cfg.inner_steps == 0 || cfg.publish_period == 0 {
            return Err(CoreError::InvalidParameter {
                name: "num_steps/inner_steps/publish_period",
                message: "must be positive".into(),
            });
        }
        if !(0.0..=1.0).contains(&cfg.partial_prob) {
            return Err(CoreError::InvalidParameter {
                name: "partial_prob",
                message: format!("must be in [0,1], got {}", cfg.partial_prob),
            });
        }
        if cfg.error_every > 0 && xstar.is_none() {
            return Err(CoreError::InvalidParameter {
                name: "error_every",
                message: "error recording requires a known fixed point".into(),
            });
        }

        let mut rng = asynciter_numerics::rng::rng(cfg.seed);
        let mut history = History::new(x0);
        // Freshest published partial per component: (outer step, value);
        // step 0 marks "no partial yet".
        let mut latest_partial: Vec<(u64, f64)> = vec![(0, 0.0); n];
        let mut trace = Trace::new(n, cfg.record_labels);
        let mut buf = StepBuf::new(n);
        let mut xl = vec![0.0; n]; // labelled read vector x(l(j))
        let mut w = vec![0.0; n]; // working vector x̃ (upgraded) then inner iterates
        let mut eff_labels = vec![0u64; n];
        let mut upd = vec![0.0; n]; // inner-iteration output buffer
        let mut scratch = vec![0.0; op.scratch_len()];
        let mut cur = x0.to_vec();

        let mut errors = Vec::new();
        let mut partial_reads = 0u64;
        let mut publishes = 0u64;
        let mut constraint_checked = 0u64;
        let mut constraint_violations = 0u64;

        for j in 1..=cfg.num_steps {
            gen.step(j, &mut buf);
            history.assemble(&buf.labels, &mut xl);
            // Baseline norm of constraint (3): ‖x(l(j)) − x*‖_u.
            let baseline = xstar.map(|xs| norm.dist(&xl, xs));

            // Upgrade reads to fresher partials where available.
            w.copy_from_slice(&xl);
            eff_labels.copy_from_slice(&buf.labels);
            for h in 0..n {
                let (ps, pv) = latest_partial[h];
                if ps > buf.labels[h] && cfg.partial_prob > 0.0 {
                    let take =
                        cfg.partial_prob >= 1.0 || rng.random_range(0.0..1.0) < cfg.partial_prob;
                    if !take {
                        continue;
                    }
                    if let (Some(b), Some(xs)) = (baseline, xstar) {
                        constraint_checked += 1;
                        let dev = norm.component(h, pv - xs[h]);
                        if dev > b + 1e-12 {
                            constraint_violations += 1;
                            if cfg.enforce_constraint {
                                continue; // keep the labelled value
                            }
                        }
                    }
                    w[h] = pv;
                    eff_labels[h] = ps;
                    partial_reads += 1;
                }
            }

            // m inner block-Jacobi iterations with off-block frozen.
            for r in 1..=cfg.inner_steps {
                op.update_active_with(&w, &buf.active, &mut upd, &mut scratch);
                for &i in &buf.active {
                    let v = upd[i];
                    if !v.is_finite() {
                        return Err(CoreError::NonFiniteIterate {
                            at_step: j,
                            component: i,
                        });
                    }
                    w[i] = v;
                }
                if r % cfg.publish_period == 0 && r < cfg.inner_steps {
                    for &i in &buf.active {
                        latest_partial[i] = (j, w[i]);
                        publishes += 1;
                    }
                }
            }

            // Finalise the outer update. Note: finals do NOT enter
            // `latest_partial` — full updates travel at the speed of the
            // label mechanism (the ordinary exchange path), while
            // partials model the *extra* fast channel of flexible
            // communication. With `publish_period ≥ inner_steps` no
            // partials exist and the run degenerates to the standard
            // asynchronous iteration, which is exactly the baseline
            // experiment E4 compares against.
            for &i in &buf.active {
                cur[i] = w[i];
                history.push(i, j, w[i]);
            }
            trace.push_step(&buf.active, &eff_labels);

            if cfg.error_every > 0 && j % cfg.error_every == 0 {
                let xs = xstar.expect("validated above");
                errors.push((j, asynciter_numerics::vecops::max_abs_diff(&cur, xs)));
            }
        }

        Ok(FlexibleRunResult {
            trace,
            final_x: cur,
            errors,
            partial_reads,
            publishes,
            constraint_checked,
            constraint_violations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asynciter_models::partition::Partition;
    use asynciter_models::schedule::BlockRoundRobin;
    use asynciter_numerics::sparse::tridiagonal;
    use asynciter_numerics::vecops;
    use asynciter_opt::linear::JacobiOperator;

    fn jacobi(n: usize) -> JacobiOperator {
        JacobiOperator::new(tridiagonal(n, 4.0, -1.0), vec![1.0; n]).unwrap()
    }

    fn block_schedule(n: usize, p: usize, lag: u64) -> BlockRoundRobin {
        BlockRoundRobin::new(Partition::blocks(n, p).unwrap(), lag)
    }

    #[test]
    fn converges_with_partials() {
        let op = jacobi(12);
        let xstar = op.solve_dense_spd().unwrap();
        let mut gen = block_schedule(12, 3, 4);
        let cfg = FlexibleConfig::new(3000, 4).with_error_every(100);
        let norm = WeightedMaxNorm::uniform(12);
        let res =
            FlexibleEngine::run(&op, &[0.0; 12], &mut gen, &cfg, &norm, Some(&xstar)).unwrap();
        assert!(vecops::max_abs_diff(&res.final_x, &xstar) < 1e-10);
        assert!(res.partial_reads > 0, "no partials were consumed");
        assert!(res.publishes > 0);
    }

    #[test]
    fn constraint_three_holds_under_contraction() {
        // With a contraction and monotone error decay, published partials
        // are never worse than the stale labelled reads they replace.
        let op = jacobi(10);
        let xstar = op.solve_dense_spd().unwrap();
        let mut gen = block_schedule(10, 5, 6);
        let cfg = FlexibleConfig::new(5000, 6).with_publish_period(2);
        let norm = WeightedMaxNorm::uniform(10);
        let res =
            FlexibleEngine::run(&op, &[0.0; 10], &mut gen, &cfg, &norm, Some(&xstar)).unwrap();
        assert!(res.constraint_checked > 100);
        let rate = res.constraint_violations as f64 / res.constraint_checked as f64;
        assert!(rate < 0.01, "violation rate {rate}");
    }

    #[test]
    fn enforcement_yields_zero_effective_violations() {
        let op = jacobi(10);
        let xstar = op.solve_dense_spd().unwrap();
        let mut gen = block_schedule(10, 5, 8);
        let cfg = FlexibleConfig::new(2000, 6)
            .with_publish_period(1)
            .with_enforcement();
        let norm = WeightedMaxNorm::uniform(10);
        let res =
            FlexibleEngine::run(&op, &[0.0; 10], &mut gen, &cfg, &norm, Some(&xstar)).unwrap();
        // Enforcement falls back on violations, so convergence holds and
        // the run is a certified Definition-3 iteration.
        assert!(vecops::max_abs_diff(&res.final_x, &xstar) < 1e-10);
    }

    #[test]
    fn more_inner_steps_converge_in_fewer_outer_steps() {
        let op = jacobi(12);
        let xstar = op.solve_dense_spd().unwrap();
        let norm = WeightedMaxNorm::uniform(12);
        let err_after = |m: usize| {
            let mut gen = block_schedule(12, 3, 4);
            // Short run so neither variant hits the f64 precision floor.
            let cfg = FlexibleConfig::new(45, m);
            let res =
                FlexibleEngine::run(&op, &[0.0; 12], &mut gen, &cfg, &norm, Some(&xstar)).unwrap();
            vecops::max_abs_diff(&res.final_x, &xstar)
        };
        let e1 = err_after(1);
        let e4 = err_after(4);
        assert!(e4 < e1, "m=4 error {e4} not better than m=1 error {e1}");
    }

    #[test]
    fn partials_help_under_stale_labels() {
        // With very stale labels, consuming fresh partials must not hurt
        // (and generally helps). Compare partial_prob 1.0 vs 0.0.
        let op = jacobi(12);
        let xstar = op.solve_dense_spd().unwrap();
        let norm = WeightedMaxNorm::uniform(12);
        let err_with_prob = |q: f64| {
            let mut gen = block_schedule(12, 4, 12);
            let cfg = FlexibleConfig::new(400, 6)
                .with_publish_period(2)
                .with_partial_prob(q);
            let res =
                FlexibleEngine::run(&op, &[0.0; 12], &mut gen, &cfg, &norm, Some(&xstar)).unwrap();
            vecops::max_abs_diff(&res.final_x, &xstar)
        };
        let with_partials = err_with_prob(1.0);
        let without = err_with_prob(0.0);
        assert!(
            with_partials <= without * 1.01,
            "partials hurt: {with_partials} vs {without}"
        );
    }

    #[test]
    fn config_validation() {
        let op = jacobi(4);
        let norm = WeightedMaxNorm::uniform(4);
        let mut gen = block_schedule(4, 2, 1);
        let bad = FlexibleConfig::new(0, 2);
        assert!(FlexibleEngine::run(&op, &[0.0; 4], &mut gen, &bad, &norm, None).is_err());
        let bad = FlexibleConfig::new(10, 0);
        assert!(FlexibleEngine::run(&op, &[0.0; 4], &mut gen, &bad, &norm, None).is_err());
        let bad = FlexibleConfig::new(10, 2).with_partial_prob(1.5);
        assert!(FlexibleEngine::run(&op, &[0.0; 4], &mut gen, &bad, &norm, None).is_err());
        let bad = FlexibleConfig::new(10, 2).with_error_every(1);
        assert!(FlexibleEngine::run(&op, &[0.0; 4], &mut gen, &bad, &norm, None).is_err());
        // Wrong norm dimension.
        let wrong_norm = WeightedMaxNorm::uniform(5);
        let cfg = FlexibleConfig::new(10, 2);
        assert!(FlexibleEngine::run(&op, &[0.0; 4], &mut gen, &cfg, &wrong_norm, None).is_err());
    }

    #[test]
    fn publish_period_beyond_m_means_no_partials() {
        let op = jacobi(8);
        let mut gen = block_schedule(8, 2, 2);
        let cfg = FlexibleConfig::new(200, 3).with_publish_period(10);
        let norm = WeightedMaxNorm::uniform(8);
        let res = FlexibleEngine::run(&op, &[0.0; 8], &mut gen, &cfg, &norm, None).unwrap();
        assert_eq!(res.publishes, 0);
        // No partials exist, so no reads can upgrade: the run degenerates
        // to the standard asynchronous iteration.
        assert_eq!(res.partial_reads, 0);
    }
}
