//! Error type for the engine crate.

use std::fmt;

/// Errors produced by the asynchronous iteration engines.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Engine configuration and problem dimensions disagree.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Actual dimension.
        actual: usize,
        /// Context string.
        context: &'static str,
    },
    /// A configuration parameter is invalid.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Constraint description.
        message: String,
    },
    /// Propagated model error.
    Model(asynciter_models::ModelError),
    /// An iterate became non-finite (divergence or operator bug).
    NonFiniteIterate {
        /// Iteration at which the non-finite value appeared.
        at_step: u64,
        /// Offending component.
        component: usize,
    },
    /// A session backend failed or was asked for something it cannot do.
    Backend {
        /// Backend name.
        backend: &'static str,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::DimensionMismatch {
                expected,
                actual,
                context,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, got {actual}"
            ),
            CoreError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            CoreError::Model(e) => write!(f, "model error: {e}"),
            CoreError::NonFiniteIterate { at_step, component } => write!(
                f,
                "iterate became non-finite at step {at_step}, component {component}"
            ),
            CoreError::Backend { backend, message } => {
                write!(f, "backend `{backend}`: {message}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<asynciter_models::ModelError> for CoreError {
    fn from(e: asynciter_models::ModelError) -> Self {
        CoreError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = CoreError::NonFiniteIterate {
            at_step: 4,
            component: 2,
        };
        assert!(e.to_string().contains("step 4"));
        assert!(e.source().is_none());
        let m: CoreError = asynciter_models::ModelError::EmptyTrace.into();
        assert!(m.source().is_some());
    }
}
