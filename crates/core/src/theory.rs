//! Convergence theory: Theorem-1 envelopes and contraction certificates.
//!
//! Theorem 1 of the paper: for the flexible asynchronous iteration of the
//! Definition-4 operator with step `γ ∈ (0, 2/(μ+L)]`,
//!
//! ```text
//! ‖x(j) − x*‖² ≤ (1 − ρ)^k · max_i ‖x_i(0) − x_i*‖² ,   ρ = γμ ,
//! ```
//!
//! for all `j ≥ j_k` on the macro-iteration sequence `{j_k}`. This module
//! computes the envelope, verifies measured error curves against it, and
//! provides weighted-max-norm contraction certificates (Perron weights)
//! for linear operators that are not contractions in the plain `‖·‖_∞`
//! (e.g. the network-flow price relaxation).

use asynciter_models::macroiter::MacroIterations;
use asynciter_numerics::sparse::CsrMatrix;

/// The Theorem-1 envelope value at macro-index `k`:
/// `(1 − ρ)^k · r0_sq` where `r0_sq = max_i ‖x_i(0) − x_i*‖²`.
///
/// # Panics
/// Panics unless `ρ ∈ (0, 1]` and `r0_sq ≥ 0`.
#[inline]
pub fn thm1_envelope(r0_sq: f64, rho: f64, k: usize) -> f64 {
    assert!(rho > 0.0 && rho <= 1.0, "thm1_envelope: rho in (0,1]");
    assert!(r0_sq >= 0.0, "thm1_envelope: r0_sq >= 0");
    (1.0 - rho).powi(k as i32) * r0_sq
}

/// `r0² = max_i (x_i(0) − x_i*)²` — the squared-max-norm initial error of
/// Theorem 1's right-hand side.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn initial_error_sq(x0: &[f64], xstar: &[f64]) -> f64 {
    let d = asynciter_numerics::vecops::max_abs_diff(x0, xstar);
    d * d
}

/// Verifies a measured error curve against the Theorem-1 bound: every
/// sample `(j, ‖x(j) − x*‖_∞)` must satisfy
/// `‖x(j) − x*‖² ≤ (1 − ρ)^{k(j)} · r0²` with `k(j)` the macro index of
/// `j`. Returns the worst observed ratio `measured² / bound`
/// (`≤ 1` means the bound holds everywhere).
///
/// `floor` is the numerical-noise threshold: samples whose measured
/// error is at or below it are skipped. The theorem is about exact
/// arithmetic; in `f64` the iterate error saturates around
/// `ε_machine · ‖x*‖` while the geometric envelope keeps shrinking, so
/// without a floor every sufficiently long run "violates" the bound for
/// spurious reasons. Pass `0.0` to verify every sample.
///
/// # Panics
/// Panics when parameters are out of range (see [`thm1_envelope`]).
pub fn thm1_worst_ratio(
    errors: &[(u64, f64)],
    macros: &MacroIterations,
    rho: f64,
    r0_sq: f64,
    floor: f64,
) -> f64 {
    let mut worst = 0.0_f64;
    for &(j, e) in errors {
        if e <= floor {
            continue;
        }
        let k = macros.index_of(j);
        let bound = thm1_envelope(r0_sq, rho, k);
        if bound == 0.0 {
            // Bound collapsed to exactly zero only when rho == 1; any
            // nonzero error is an infinite ratio.
            if e > 0.0 {
                return f64::INFINITY;
            }
            continue;
        }
        worst = worst.max(e * e / bound);
    }
    worst
}

/// Power iteration on a nonnegative matrix `M`: returns the Perron
/// weights `u > 0` and the spectral-radius estimate `σ = ρ(M)`. For an
/// asynchronous linear iteration `x ← Mx + c`, contraction in
/// `‖·‖_u` holds with factor `σ < 1` — the classical certificate for
/// totally asynchronous convergence of substochastic relaxations (e.g.
/// grounded network-flow duals) that are *not* plain `‖·‖_∞`
/// contractions.
///
/// `M` is given by the absolute values of its entries (the function takes
/// `|m_ij|` internally, so signed matrices are fine). Returns `None` when
/// the iteration fails to produce a strictly positive vector (reducible
/// `M` with zero rows, for instance); in that case a small uniform
/// regularisation of the weights is attempted first.
pub fn perron_weights(m: &CsrMatrix, iters: usize) -> Option<(Vec<f64>, f64)> {
    let n = m.rows();
    if n == 0 || m.cols() != n {
        return None;
    }
    let mut u = vec![1.0; n];
    let mut next = vec![0.0; n];
    for _ in 0..iters {
        // Power iteration on (|M| + I): the identity shift makes the
        // matrix primitive (bipartite |M| would otherwise oscillate and
        // never converge to the Perron vector) without changing the
        // eigenvectors. The tiny uniform floor escapes zero rows of
        // reducible matrices (acts like adding ε·1·uᵀ, perturbing the
        // spectral radius by at most ε·n).
        for i in 0..n {
            let (idx, vals) = m.row(i);
            let mut s = 1e-12 + u[i];
            for (&c, &v) in idx.iter().zip(vals) {
                s += v.abs() * u[c];
            }
            next[i] = s;
        }
        let norm = next.iter().cloned().fold(0.0_f64, f64::max);
        if !norm.is_finite() || norm <= 0.0 {
            return None;
        }
        for (u_i, n_i) in u.iter_mut().zip(&next) {
            *u_i = n_i / norm;
        }
    }
    if u.iter().any(|&v| v.is_nan() || v <= 0.0) {
        return None;
    }
    // The Collatz–Wielandt upper bound max_i (|M|u)_i / u_i: converges to
    // ρ(|M|) from above and is exactly the certified contraction factor
    // of the weighted max norm built from u.
    let sigma = weighted_norm_bound(m, &u);
    Some((u, sigma))
}

/// The induced weighted-max-norm bound `‖M‖_u = max_i Σ_j |m_ij| u_j /
/// u_i` — with Perron weights this approaches `ρ(|M|)`.
///
/// # Panics
/// Panics on dimension mismatch or nonpositive weights.
pub fn weighted_norm_bound(m: &CsrMatrix, u: &[f64]) -> f64 {
    assert_eq!(m.rows(), u.len(), "weighted_norm_bound: dimension");
    assert!(u.iter().all(|&v| v > 0.0), "weights must be positive");
    let mut worst = 0.0_f64;
    for i in 0..m.rows() {
        let (idx, vals) = m.row(i);
        let mut s = 0.0;
        for (&c, &v) in idx.iter().zip(vals) {
            s += v.abs() * u[c];
        }
        worst = worst.max(s / u[i]);
    }
    worst
}

/// Empirical max-norm contraction estimate of an operator: the largest
/// observed ratio `‖F(x) − F(y)‖_∞ / ‖x − y‖_∞` over `trials` random
/// pairs drawn from a centred Gaussian of scale `scale`.
pub fn empirical_contraction(
    op: &dyn asynciter_opt::traits::Operator,
    scale: f64,
    trials: usize,
    seed: u64,
) -> f64 {
    let n = op.dim();
    let mut rng = asynciter_numerics::rng::rng(seed);
    let mut fx = vec![0.0; n];
    let mut fy = vec![0.0; n];
    let mut worst = 0.0_f64;
    for _ in 0..trials {
        let x: Vec<f64> = asynciter_numerics::rng::normal_vec(&mut rng, n)
            .into_iter()
            .map(|v| v * scale)
            .collect();
        let y: Vec<f64> = asynciter_numerics::rng::normal_vec(&mut rng, n)
            .into_iter()
            .map(|v| v * scale)
            .collect();
        let den = asynciter_numerics::vecops::max_abs_diff(&x, &y);
        if den == 0.0 {
            continue;
        }
        op.apply(&x, &mut fx);
        op.apply(&y, &mut fy);
        worst = worst.max(asynciter_numerics::vecops::max_abs_diff(&fx, &fy) / den);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use asynciter_numerics::sparse::tridiagonal;
    use asynciter_opt::linear::JacobiOperator;

    #[test]
    fn envelope_decays_geometrically() {
        assert_eq!(thm1_envelope(4.0, 0.5, 0), 4.0);
        assert_eq!(thm1_envelope(4.0, 0.5, 1), 2.0);
        assert_eq!(thm1_envelope(4.0, 0.5, 3), 0.5);
        assert_eq!(thm1_envelope(4.0, 1.0, 2), 0.0);
    }

    #[test]
    fn initial_error_is_squared_max() {
        assert_eq!(initial_error_sq(&[0.0, 0.0], &[3.0, -1.0]), 9.0);
    }

    #[test]
    fn worst_ratio_flags_violations() {
        let macros = MacroIterations {
            boundaries: vec![0, 10, 20],
        };
        // At j=15 macro index is 1 → bound = 0.5 * 4 = 2. Error 1.0 →
        // ratio 0.5; error 2.0 → ratio 2.0 (violation).
        let ok = thm1_worst_ratio(&[(15, 1.0)], &macros, 0.5, 4.0, 0.0);
        assert!((ok - 0.5).abs() < 1e-12);
        let bad = thm1_worst_ratio(&[(15, 2.0)], &macros, 0.5, 4.0, 0.0);
        assert!((bad - 2.0).abs() < 1e-12);
        // Samples at or below the floor are ignored.
        let floored = thm1_worst_ratio(&[(15, 2.0)], &macros, 0.5, 4.0, 2.0);
        assert_eq!(floored, 0.0);
    }

    #[test]
    fn perron_weights_certify_substochastic_matrix() {
        // M = tridiagonal with rows summing to < 1 except interior = 1:
        // entries 0.5 on each off-diagonal, 0 diagonal: interior row sums
        // are exactly 1.0 → plain inf-norm bound is 1, but the spectral
        // radius (and hence the Perron-weighted norm) is cos(π/(n+1)) < 1.
        let n = 9;
        let m = {
            let mut trip = Vec::new();
            for i in 0..n {
                if i > 0 {
                    trip.push((i, i - 1, 0.5));
                }
                if i + 1 < n {
                    trip.push((i, i + 1, 0.5));
                }
            }
            asynciter_numerics::sparse::CsrMatrix::from_triplets(n, n, &trip).unwrap()
        };
        let (u, sigma) = perron_weights(&m, 5000).unwrap();
        let expected = (std::f64::consts::PI / (n as f64 + 1.0)).cos();
        // Collatz–Wielandt converges to ρ(|M|) from above.
        assert!(sigma >= expected - 1e-9, "sigma {sigma} below ρ {expected}");
        assert!(
            (sigma - expected).abs() < 1e-6,
            "sigma {sigma} vs {expected}"
        );
        let bound = weighted_norm_bound(&m, &u);
        assert!(bound < 1.0, "weighted bound {bound}");
        assert!((bound - sigma).abs() < 1e-12);
    }

    #[test]
    fn weighted_norm_with_unit_weights_is_inf_norm() {
        let m = tridiagonal(5, 0.2, 0.3);
        let u = vec![1.0; 5];
        // Row sums: interior 0.2 + 0.6 = 0.8.
        assert!((weighted_norm_bound(&m, &u) - 0.8).abs() < 1e-15);
    }

    #[test]
    fn empirical_contraction_matches_certificate() {
        let op = JacobiOperator::new(tridiagonal(8, 4.0, -1.0), vec![0.0; 8]).unwrap();
        let cert = op.contraction_factor();
        let emp = empirical_contraction(&op, 1.0, 200, 9);
        assert!(emp <= cert + 1e-9, "empirical {emp} > certificate {cert}");
        // And the certificate is not wildly loose for this operator.
        assert!(emp > 0.5 * cert, "empirical {emp} too far below {cert}");
    }

    #[test]
    #[should_panic(expected = "rho in (0,1]")]
    fn envelope_rejects_bad_rho() {
        thm1_envelope(1.0, 0.0, 1);
    }
}
