//! # asynciter-core
//!
//! Execution engines for asynchronous iterations, following El-Baz
//! (IPPS 2022) exactly:
//!
//! - [`engine`] — the deterministic *replay engine* of Definition 1: given
//!   an operator `F`, an initial vector `x(0)` and a schedule `(𝒮, ℒ)`, it
//!   produces the iterate sequence of Eq. (1), assembling each update's
//!   read vector `x(l(j))` from the full update history so that arbitrary
//!   (unbounded, out-of-order) labels are honoured bit-for-bit.
//! - [`flexible`] — the flexible-communication engine of Definition 3:
//!   updates run `m` inner iterations and *publish partial results*, and
//!   readers may consume those partials (sub-step labels); the engine can
//!   check — or enforce — the norm constraint (3) against a known fixed
//!   point.
//! - [`theory`] — Theorem 1's `(1−ρ)^k` envelope, Perron weights for
//!   weighted-max-norm contraction certificates, and empirical contraction
//!   estimation.
//! - [`stopping`] — stopping rules: plain residual tests and the
//!   macro-iteration-based criterion in the spirit of Miellou–Spiteri–
//!   El Baz \[15\], with an online macro-iteration tracker.
//! - [`session`] — the **unified execution API**: one fluent [`Session`]
//!   builder, one [`session::Backend`] trait and one [`session::RunReport`]
//!   shared by every engine in the workspace (replay, flexible, the
//!   threaded runtimes of `asynciter-runtime`, the simulator of
//!   `asynciter-sim`). New code should start here; the per-engine entry
//!   points below remain as thin compatibility shims.

#![deny(missing_docs)]
#![warn(clippy::all)]
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod engine;
pub mod error;
pub mod flexible;
pub mod session;
pub mod stopping;
pub mod theory;

pub use engine::{EngineConfig, ReplayEngine, RunResult};
pub use error::CoreError;
pub use flexible::{FlexibleConfig, FlexibleEngine, FlexibleRunResult};
pub use session::{Flexible, Problem, RecordMode, Replay, RunControl, RunReport, Session};
pub use stopping::{OnlineMacroTracker, StoppingRule};

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
