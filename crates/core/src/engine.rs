//! The Definition-1 replay engine.
//!
//! Eq. (1) of the paper defines the asynchronous iterate sequence
//!
//! ```text
//! x_i(j) = F_i( x_1(l_1(j)), …, x_n(l_n(j)) )   if i ∈ S_j,
//! x_i(j) = x_i(j − 1)                            otherwise.
//! ```
//!
//! [`ReplayEngine`] executes this *exactly*: it keeps the full history of
//! every component's updates, assembles the read vector `x(l(j))` by
//! label lookup (so out-of-order and unbounded delays are honoured
//! bit-for-bit, not approximated), applies the operator to the active
//! set, and records the trace on which macro-iterations, epochs and the
//! condition checkers operate. Determinism makes every experiment
//! replayable from a seed.

use crate::error::CoreError;
use crate::stopping::{StopState, StoppingRule};
use asynciter_models::schedule::{ScheduleGen, StepBuf};
use asynciter_models::trace::{LabelStore, Trace};
use asynciter_opt::traits::Operator;

/// Per-component update history with label lookup.
///
/// `value_at(i, l)` returns `x_i(l)`: the value component `i` had at
/// iteration label `l` — i.e. the value written by the most recent update
/// of `i` at or before `l` (or the initial value). Lookups are binary
/// searches over each component's private update log.
#[derive(Debug, Clone)]
pub struct History {
    /// Per component: update log `(step j, value)`, starting with `(0, x0)`.
    logs: Vec<Vec<(u64, f64)>>,
}

impl History {
    /// Creates a history initialised with `x(0)`.
    pub fn new(x0: &[f64]) -> Self {
        Self {
            logs: x0.iter().map(|&v| vec![(0u64, v)]).collect(),
        }
    }

    /// Number of components.
    pub fn n(&self) -> usize {
        self.logs.len()
    }

    /// Records the update `x_i(j) = value`.
    ///
    /// # Panics
    /// Panics when steps are not appended in increasing order.
    #[inline]
    pub fn push(&mut self, i: usize, j: u64, value: f64) {
        let log = &mut self.logs[i];
        debug_assert!(
            log.last().map(|&(s, _)| s < j).unwrap_or(true),
            "History::push: non-increasing step"
        );
        log.push((j, value));
    }

    /// `x_i(l)`: the value of component `i` at label `l`.
    #[inline]
    pub fn value_at(&self, i: usize, l: u64) -> f64 {
        let log = &self.logs[i];
        // Most logs are queried near their end (fresh labels); check the
        // last entry before binary searching.
        let (last_j, last_v) = *log.last().expect("log never empty");
        if last_j <= l {
            return last_v;
        }
        let pos = log.partition_point(|&(s, _)| s <= l);
        log[pos - 1].1
    }

    /// The current (most recent) value of component `i`.
    #[inline]
    pub fn current(&self, i: usize) -> f64 {
        self.logs[i].last().expect("log never empty").1
    }

    /// Assembles the read vector `x(l(j)) = (x_1(l_1), …, x_n(l_n))`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn assemble(&self, labels: &[u64], out: &mut [f64]) {
        assert_eq!(labels.len(), self.n(), "History::assemble: labels dim");
        assert_eq!(out.len(), self.n(), "History::assemble: out dim");
        for (i, (&l, o)) in labels.iter().zip(out.iter_mut()).enumerate() {
            *o = self.value_at(i, l);
        }
    }

    /// Copies the current vector into `out`.
    pub fn snapshot(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.n(), "History::snapshot: out dim");
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.current(i);
        }
    }

    /// Total number of stored log entries (memory diagnostic).
    pub fn entries(&self) -> usize {
        self.logs.iter().map(Vec::len).sum()
    }
}

/// Configuration of a replay run.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Maximum number of iterations `J`.
    pub num_steps: u64,
    /// Label retention for the recorded trace.
    pub record_labels: LabelStore,
    /// Record `‖x(j) − x*‖_∞` every this many steps (0 = never); requires
    /// a known fixed point.
    pub error_every: u64,
    /// Record the fixed-point residual `‖x − F(x)‖_∞` every this many
    /// steps (0 = never). Residual evaluation costs one full operator
    /// application.
    pub residual_every: u64,
    /// Optional stopping rule evaluated online.
    pub stopping: Option<StoppingRule>,
}

impl EngineConfig {
    /// A plain fixed-length run recording full labels.
    pub fn fixed(num_steps: u64) -> Self {
        Self {
            num_steps,
            record_labels: LabelStore::Full,
            error_every: 0,
            residual_every: 0,
            stopping: None,
        }
    }

    /// Enables error recording against a known fixed point.
    pub fn with_error_every(mut self, every: u64) -> Self {
        self.error_every = every;
        self
    }

    /// Enables residual recording.
    pub fn with_residual_every(mut self, every: u64) -> Self {
        self.residual_every = every;
        self
    }

    /// Sets the label retention mode.
    pub fn with_labels(mut self, store: LabelStore) -> Self {
        self.record_labels = store;
        self
    }

    /// Installs a stopping rule.
    pub fn with_stopping(mut self, rule: StoppingRule) -> Self {
        self.stopping = Some(rule);
        self
    }
}

/// Result of a replay run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The recorded trace (exactly the `(𝒮, ℒ)` realisation executed).
    pub trace: Trace,
    /// Final iterate `x(J)`.
    pub final_x: Vec<f64>,
    /// Number of iterations actually executed.
    pub steps_run: u64,
    /// `(j, ‖x(j) − x*‖_∞)` samples (empty unless requested).
    pub errors: Vec<(u64, f64)>,
    /// `(j, ‖x(j) − F(x(j))‖_∞)` samples (empty unless requested).
    pub residuals: Vec<(u64, f64)>,
    /// True when a stopping rule fired before `num_steps`.
    pub stopped_early: bool,
}

/// The Definition-1 replay engine. See module docs.
#[derive(Debug, Default)]
pub struct ReplayEngine;

impl ReplayEngine {
    /// Runs the asynchronous iteration `(F, x(0), 𝒮, ℒ)`.
    ///
    /// `xstar` is the known fixed point for error recording and
    /// error-based stopping (experiments only — the algorithm itself
    /// never uses it).
    ///
    /// # Errors
    /// Dimension mismatches, invalid configuration, or a non-finite
    /// iterate (operator divergence).
    pub fn run(
        op: &dyn Operator,
        x0: &[f64],
        gen: &mut dyn ScheduleGen,
        cfg: &EngineConfig,
        xstar: Option<&[f64]>,
    ) -> crate::Result<RunResult> {
        let n = op.dim();
        if x0.len() != n {
            return Err(CoreError::DimensionMismatch {
                expected: n,
                actual: x0.len(),
                context: "ReplayEngine::run (x0)",
            });
        }
        if gen.n() != n {
            return Err(CoreError::DimensionMismatch {
                expected: n,
                actual: gen.n(),
                context: "ReplayEngine::run (schedule)",
            });
        }
        if let Some(xs) = xstar {
            if xs.len() != n {
                return Err(CoreError::DimensionMismatch {
                    expected: n,
                    actual: xs.len(),
                    context: "ReplayEngine::run (xstar)",
                });
            }
        }
        if cfg.num_steps == 0 {
            return Err(CoreError::InvalidParameter {
                name: "num_steps",
                message: "must be positive".into(),
            });
        }
        if cfg.error_every > 0 && xstar.is_none() {
            return Err(CoreError::InvalidParameter {
                name: "error_every",
                message: "error recording requires a known fixed point".into(),
            });
        }

        let mut history = History::new(x0);
        let mut trace = Trace::new(n, cfg.record_labels);
        let mut buf = StepBuf::new(n);
        // Workhorse buffers reused across iterations (no allocation in the
        // step loop), including the operator's caller-owned scratch.
        let mut xl = vec![0.0; n]; // assembled read vector x(l(j))
        let mut cur = x0.to_vec(); // current iterate x(j)
        let mut scratch = vec![0.0; op.scratch_len()];
        let mut stop_state = cfg.stopping.as_ref().map(|r| StopState::new(r, n));

        let mut errors = Vec::new();
        let mut residuals = Vec::new();
        let mut stopped_early = false;
        let mut steps_run = 0u64;

        for j in 1..=cfg.num_steps {
            gen.step(j, &mut buf);
            debug_assert!(!buf.active.is_empty(), "schedule produced empty S_j");
            history.assemble(&buf.labels, &mut xl);
            op.update_active_with(&xl, &buf.active, &mut cur, &mut scratch);
            for &i in &buf.active {
                let v = cur[i];
                if !v.is_finite() {
                    return Err(CoreError::NonFiniteIterate {
                        at_step: j,
                        component: i,
                    });
                }
                history.push(i, j, v);
            }
            trace.push_step(&buf.active, &buf.labels);
            steps_run = j;

            if cfg.error_every > 0 && j % cfg.error_every == 0 {
                let xs = xstar.expect("validated above");
                errors.push((j, asynciter_numerics::vecops::max_abs_diff(&cur, xs)));
            }
            if cfg.residual_every > 0 && j % cfg.residual_every == 0 {
                residuals.push((j, op.residual_inf_with(&cur, &mut scratch)));
            }
            if let (Some(rule), Some(state)) = (cfg.stopping.as_ref(), stop_state.as_mut()) {
                if state.observe(rule, j, &buf, &cur, op, xstar, &mut scratch) {
                    stopped_early = true;
                    break;
                }
            }
        }

        Ok(RunResult {
            trace,
            final_x: cur,
            steps_run,
            errors,
            residuals,
            stopped_early,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asynciter_models::schedule::{ChaoticBounded, CyclicCoordinate, SyncJacobi};
    use asynciter_numerics::sparse::tridiagonal;
    use asynciter_numerics::vecops;
    use asynciter_opt::linear::JacobiOperator;
    use asynciter_opt::prox::L1;
    use asynciter_opt::proxgrad::{gamma_max, SparseProxGrad};
    use asynciter_opt::quadratic::SparseQuadratic;
    use asynciter_opt::traits::SmoothObjective;

    fn jacobi() -> JacobiOperator {
        JacobiOperator::new(tridiagonal(6, 4.0, -1.0), vec![1.0; 6]).unwrap()
    }

    #[test]
    fn history_lookup_semantics() {
        let mut h = History::new(&[10.0, 20.0]);
        h.push(0, 3, 11.0);
        h.push(0, 7, 12.0);
        assert_eq!(h.value_at(0, 0), 10.0);
        assert_eq!(h.value_at(0, 2), 10.0);
        assert_eq!(h.value_at(0, 3), 11.0);
        assert_eq!(h.value_at(0, 6), 11.0);
        assert_eq!(h.value_at(0, 7), 12.0);
        assert_eq!(h.value_at(0, 100), 12.0);
        assert_eq!(h.value_at(1, 50), 20.0);
        assert_eq!(h.current(0), 12.0);
        assert_eq!(h.entries(), 4);
    }

    #[test]
    fn history_assemble() {
        let mut h = History::new(&[1.0, 2.0]);
        h.push(0, 1, 5.0);
        let mut out = [0.0; 2];
        h.assemble(&[0, 0], &mut out);
        assert_eq!(out, [1.0, 2.0]);
        h.assemble(&[1, 0], &mut out);
        assert_eq!(out, [5.0, 2.0]);
    }

    #[test]
    fn sync_replay_equals_jacobi_iteration() {
        // With the synchronous schedule the engine must reproduce plain
        // Jacobi: x(j) = F(x(j−1)).
        let op = jacobi();
        let x0 = vec![0.0; 6];
        let mut gen = SyncJacobi::new(6);
        let cfg = EngineConfig::fixed(20);
        let res = ReplayEngine::run(&op, &x0, &mut gen, &cfg, None).unwrap();

        let mut x = x0.clone();
        let mut next = vec![0.0; 6];
        for _ in 0..20 {
            op.apply(&x, &mut next);
            std::mem::swap(&mut x, &mut next);
        }
        assert!(vecops::max_abs_diff(&res.final_x, &x) < 1e-15);
        assert_eq!(res.steps_run, 20);
        assert!(!res.stopped_early);
    }

    #[test]
    fn cyclic_replay_equals_gauss_seidel() {
        let op = jacobi();
        let x0 = vec![0.0; 6];
        let mut gen = CyclicCoordinate::new(6);
        let res = ReplayEngine::run(&op, &x0, &mut gen, &EngineConfig::fixed(60), None).unwrap();

        // Hand-rolled Gauss–Seidel: 10 sweeps of in-place updates.
        let mut x = x0;
        for _ in 0..10 {
            for i in 0..6 {
                x[i] = op.component(i, &x);
            }
        }
        assert!(vecops::max_abs_diff(&res.final_x, &x) < 1e-15);
    }

    #[test]
    fn async_replay_converges_for_contraction() {
        let op = jacobi();
        let xstar = op.solve_dense_spd().unwrap();
        let mut gen = ChaoticBounded::new(6, 1, 3, 12, false, 42);
        let cfg = EngineConfig::fixed(4000).with_error_every(100);
        let res = ReplayEngine::run(&op, &[0.0; 6], &mut gen, &cfg, Some(&xstar)).unwrap();
        let final_err = vecops::max_abs_diff(&res.final_x, &xstar);
        assert!(final_err < 1e-10, "error {final_err}");
        // Errors decrease overall.
        assert!(res.errors.first().unwrap().1 > res.errors.last().unwrap().1);
    }

    #[test]
    fn replay_is_deterministic() {
        let op = jacobi();
        let cfg = EngineConfig::fixed(500);
        let run = || {
            let mut gen = ChaoticBounded::new(6, 1, 3, 8, false, 7);
            ReplayEngine::run(&op, &[0.0; 6], &mut gen, &cfg, None).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.final_x, b.final_x);
        assert_eq!(a.trace.len(), b.trace.len());
        for j in 1..=a.trace.len() as u64 {
            assert_eq!(a.trace.step(j).active, b.trace.step(j).active);
            assert_eq!(a.trace.labels(j).unwrap(), b.trace.labels(j).unwrap());
        }
    }

    #[test]
    fn stale_reads_are_honoured_exactly() {
        // Hand-built 2-component scenario with a recorded schedule:
        // F(x) = (x1+1, x0) — the engine must read exactly the labelled
        // values.
        struct Shift;
        impl Operator for Shift {
            fn dim(&self) -> usize {
                2
            }
            fn component(&self, i: usize, x: &[f64]) -> f64 {
                if i == 0 {
                    x[1] + 1.0
                } else {
                    x[0]
                }
            }
        }
        let mut t = asynciter_models::trace::Trace::new(2, LabelStore::Full);
        t.push_step(&[0], &[0, 0]); // j=1: x0 := x1(0) + 1 = 1
        t.push_step(&[1], &[1, 0]); // j=2: x1 := x0(1) = 1
        t.push_step(&[0], &[0, 0]); // j=3: stale! x0 := x1(0) + 1 = 1 (not 2)
        t.push_step(&[0], &[0, 2]); // j=4: x0 := x1(2) + 1 = 2
        let mut gen = asynciter_models::schedule::RecordedSchedule::new(t).unwrap();
        let res = ReplayEngine::run(&Shift, &[0.0, 0.0], &mut gen, &EngineConfig::fixed(4), None)
            .unwrap();
        assert_eq!(res.final_x, vec![2.0, 1.0]);
    }

    #[test]
    fn proxgrad_async_run_reaches_fixed_point() {
        let f = SparseQuadratic::random_diag_dominant(16, 3, 0.4, 1.2, 5).unwrap();
        let gamma = 0.9 * gamma_max(f.strong_convexity(), f.lipschitz());
        let op = SparseProxGrad::new(f, L1::new(0.1), gamma).unwrap();
        let (xstar, _) = op.solve_exact().unwrap();
        let mut gen = ChaoticBounded::new(16, 2, 6, 20, false, 11);
        let cfg = EngineConfig::fixed(20_000);
        let res = ReplayEngine::run(&op, &[0.0; 16], &mut gen, &cfg, Some(&xstar)).unwrap();
        assert!(vecops::max_abs_diff(&res.final_x, &xstar) < 1e-9);
    }

    #[test]
    fn dimension_validation() {
        let op = jacobi();
        let mut gen = SyncJacobi::new(5); // wrong n
        assert!(matches!(
            ReplayEngine::run(&op, &[0.0; 6], &mut gen, &EngineConfig::fixed(1), None),
            Err(CoreError::DimensionMismatch { .. })
        ));
        let mut gen = SyncJacobi::new(6);
        assert!(
            ReplayEngine::run(&op, &[0.0; 5], &mut gen, &EngineConfig::fixed(1), None).is_err()
        );
        assert!(
            ReplayEngine::run(&op, &[0.0; 6], &mut gen, &EngineConfig::fixed(0), None).is_err()
        );
        // error_every without xstar.
        let cfg = EngineConfig::fixed(5).with_error_every(1);
        assert!(ReplayEngine::run(&op, &[0.0; 6], &mut gen, &cfg, None).is_err());
    }

    #[test]
    fn divergence_detected() {
        struct Doubler;
        impl Operator for Doubler {
            fn dim(&self) -> usize {
                1
            }
            fn component(&self, _i: usize, x: &[f64]) -> f64 {
                x[0] * 1e30
            }
        }
        // 1e30 squared repeatedly overflows to inf quickly.
        let mut gen = SyncJacobi::new(1);
        let err = ReplayEngine::run(
            &Doubler,
            &[1.0e100],
            &mut gen,
            &EngineConfig::fixed(100),
            None,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::NonFiniteIterate { .. }));
    }

    #[test]
    fn residual_recording() {
        let op = jacobi();
        let mut gen = SyncJacobi::new(6);
        let cfg = EngineConfig::fixed(100).with_residual_every(10);
        let res = ReplayEngine::run(&op, &[0.0; 6], &mut gen, &cfg, None).unwrap();
        assert_eq!(res.residuals.len(), 10);
        // Residuals decrease for a contraction under sync iteration.
        assert!(res.residuals.first().unwrap().1 > res.residuals.last().unwrap().1);
    }
}
