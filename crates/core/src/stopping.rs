//! Stopping rules for asynchronous iterations.
//!
//! Stopping asynchronous iterations is notoriously delicate: a small
//! instantaneous residual proves nothing when stale updates are still in
//! flight. The paper's reference \[15\] (Miellou–Spiteri–El Baz, *A new
//! stopping criterion for linear perturbed asynchronous iterations*)
//! anchors the test to the macro-iteration structure instead: if the
//! iterate moved by at most `ε·(1−α)/α` in weighted max norm over a full
//! macro-iteration of an `α`-contracting operator, then the distance to
//! the fixed point is at most `ε`. [`StoppingRule::MacroContraction`]
//! implements exactly that, with an [`OnlineMacroTracker`] detecting
//! macro-iteration boundaries on the fly (streaming form of
//! Definition 2).

use asynciter_models::schedule::StepBuf;
use asynciter_numerics::norm::WeightedMaxNorm;
use asynciter_opt::traits::Operator;

/// Streaming macro-iteration detector (literal Definition 2).
///
/// Feed every executed step; boundaries are reported as they complete.
#[derive(Debug, Clone)]
pub struct OnlineMacroTracker {
    jk: u64,
    covered: Vec<bool>,
    count: usize,
    boundaries: u64,
}

impl OnlineMacroTracker {
    /// Tracker over `n` components.
    pub fn new(n: usize) -> Self {
        Self {
            jk: 0,
            covered: vec![false; n],
            count: 0,
            boundaries: 0,
        }
    }

    /// Observes step `j` with active set `active` and oldest read label
    /// `min_label`; returns `Some(j)` when `j` completes a
    /// macro-iteration.
    pub fn observe(&mut self, j: u64, active: &[usize], min_label: u64) -> Option<u64> {
        if min_label >= self.jk {
            for &i in active {
                if !self.covered[i] {
                    self.covered[i] = true;
                    self.count += 1;
                }
            }
        }
        if self.count == self.covered.len() {
            self.jk = j;
            self.covered.fill(false);
            self.count = 0;
            self.boundaries += 1;
            Some(j)
        } else {
            None
        }
    }

    /// Number of completed macro-iterations so far.
    pub fn completed(&self) -> u64 {
        self.boundaries
    }

    /// The most recent boundary `j_k` (0 before the first completes).
    pub fn last_boundary(&self) -> u64 {
        self.jk
    }
}

/// A stopping rule evaluated online by the engines.
#[derive(Debug, Clone)]
pub enum StoppingRule {
    /// Stop when the fixed-point residual `‖x − F(x)‖_∞ ≤ eps`, checked
    /// every `check_every` steps. Costs one operator application per
    /// check; **unsound under asynchronism in general** (stale updates
    /// may still be in flight) — provided as the naive baseline that
    /// experiment E10 compares against.
    Residual {
        /// Residual threshold.
        eps: f64,
        /// Check period in steps.
        check_every: u64,
    },
    /// The macro-iteration criterion of \[15\]: at each macro-iteration
    /// boundary compare the iterate against its value at the previous
    /// boundary in `‖·‖_u`; stop when the change is below
    /// `eps · (1 − alpha) / alpha`, which for an `α`-contraction in
    /// `‖·‖_u` certifies `‖x − x*‖_u ≤ eps`.
    MacroContraction {
        /// Target accuracy `ε`.
        eps: f64,
        /// Contraction factor `α ∈ (0, 1)` of the operator in `‖·‖_u`.
        alpha: f64,
        /// The weighted max norm in which the operator contracts.
        norm: WeightedMaxNorm,
    },
    /// Oracle rule for experiments: stop when the true error
    /// `‖x − x*‖_∞ ≤ eps` (requires the engine to know `x*`).
    ErrorBelow {
        /// Error threshold.
        eps: f64,
        /// Check period in steps.
        check_every: u64,
    },
}

/// Mutable evaluation state of a stopping rule.
#[derive(Debug)]
pub struct StopState {
    tracker: Option<OnlineMacroTracker>,
    prev_boundary_x: Option<Vec<f64>>,
}

impl StopState {
    /// Initialises the state for rule `rule` on an `n`-dimensional run.
    pub fn new(rule: &StoppingRule, n: usize) -> Self {
        match rule {
            StoppingRule::MacroContraction { .. } => Self {
                tracker: Some(OnlineMacroTracker::new(n)),
                prev_boundary_x: None,
            },
            _ => Self {
                tracker: None,
                prev_boundary_x: None,
            },
        }
    }

    /// Observes step `j`; returns true when the run should stop.
    ///
    /// `scratch` is the engine's caller-owned operator scratch (length
    /// `≥ op.scratch_len()`), so residual checks in hot loops allocate
    /// nothing.
    ///
    /// # Panics
    /// Panics when an [`StoppingRule::ErrorBelow`] rule is used without a
    /// known fixed point.
    #[allow(clippy::too_many_arguments)]
    pub fn observe(
        &mut self,
        rule: &StoppingRule,
        j: u64,
        buf: &StepBuf,
        cur: &[f64],
        op: &dyn Operator,
        xstar: Option<&[f64]>,
        scratch: &mut [f64],
    ) -> bool {
        match rule {
            StoppingRule::Residual { eps, check_every } => {
                let period = (*check_every).max(1);
                j.is_multiple_of(period) && op.residual_inf_with(cur, scratch) <= *eps
            }
            StoppingRule::ErrorBelow { eps, check_every } => {
                let period = (*check_every).max(1);
                if !j.is_multiple_of(period) {
                    return false;
                }
                let xs = xstar.expect("ErrorBelow stopping rule requires xstar");
                asynciter_numerics::vecops::max_abs_diff(cur, xs) <= *eps
            }
            StoppingRule::MacroContraction { eps, alpha, norm } => {
                let min_label = buf.labels.iter().copied().min().unwrap_or(0);
                let tracker = self.tracker.as_mut().expect("tracker initialised");
                if tracker.observe(j, &buf.active, min_label).is_none() {
                    return false;
                }
                let stop = match &self.prev_boundary_x {
                    Some(prev) => {
                        let change = norm.dist(cur, prev);
                        change <= eps * (1.0 - alpha) / alpha
                    }
                    None => false,
                };
                self.prev_boundary_x = Some(cur.to_vec());
                stop
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, ReplayEngine};
    use asynciter_models::schedule::{ChaoticBounded, CyclicCoordinate, SyncJacobi};
    use asynciter_numerics::sparse::tridiagonal;
    use asynciter_numerics::vecops;
    use asynciter_opt::linear::JacobiOperator;

    fn jacobi(n: usize) -> JacobiOperator {
        JacobiOperator::new(tridiagonal(n, 4.0, -1.0), vec![1.0; n]).unwrap()
    }

    #[test]
    fn online_tracker_matches_offline_macroiter() {
        let mut gen = ChaoticBounded::new(5, 1, 3, 9, false, 33);
        let trace =
            asynciter_models::schedule::record(&mut gen, 2000, asynciter_models::LabelStore::Full);
        let offline = asynciter_models::macroiter::macro_iterations(&trace);
        let mut tracker = OnlineMacroTracker::new(5);
        let mut online = vec![0u64];
        for (j, s) in trace.iter() {
            let active: Vec<usize> = s.active.iter().map(|&i| i as usize).collect();
            if let Some(b) = tracker.observe(j, &active, s.min_label) {
                online.push(b);
            }
        }
        assert_eq!(online, offline.boundaries);
        assert_eq!(tracker.completed() as usize, offline.count());
    }

    #[test]
    fn residual_rule_stops_sync_run() {
        let op = jacobi(6);
        let mut gen = SyncJacobi::new(6);
        let cfg = EngineConfig::fixed(100_000).with_stopping(StoppingRule::Residual {
            eps: 1e-10,
            check_every: 5,
        });
        let res = ReplayEngine::run(&op, &[0.0; 6], &mut gen, &cfg, None).unwrap();
        assert!(res.stopped_early);
        assert!(res.steps_run < 100_000);
        assert!(op.residual_inf(&res.final_x) <= 1e-10);
    }

    #[test]
    fn macro_contraction_rule_certifies_error() {
        let op = jacobi(8);
        let xstar = op.solve_dense_spd().unwrap();
        let alpha = op.contraction_factor();
        let eps = 1e-8;
        let mut gen = ChaoticBounded::new(8, 2, 4, 6, false, 3);
        let cfg = EngineConfig::fixed(1_000_000).with_stopping(StoppingRule::MacroContraction {
            eps,
            alpha,
            norm: WeightedMaxNorm::uniform(8),
        });
        let res = ReplayEngine::run(&op, &[0.0; 8], &mut gen, &cfg, None).unwrap();
        assert!(res.stopped_early, "macro rule never fired");
        let err = vecops::max_abs_diff(&res.final_x, &xstar);
        assert!(err <= eps, "certified {eps} but true error {err}");
    }

    #[test]
    fn error_below_rule_uses_oracle() {
        let op = jacobi(6);
        let xstar = op.solve_dense_spd().unwrap();
        let mut gen = CyclicCoordinate::new(6);
        let cfg = EngineConfig::fixed(1_000_000).with_stopping(StoppingRule::ErrorBelow {
            eps: 1e-6,
            check_every: 1,
        });
        let res = ReplayEngine::run(&op, &[0.0; 6], &mut gen, &cfg, Some(&xstar)).unwrap();
        assert!(res.stopped_early);
        assert!(vecops::max_abs_diff(&res.final_x, &xstar) <= 1e-6);
        // Fires essentially as soon as possible: one more sweep would
        // overshoot by at most the contraction factor.
    }

    #[test]
    fn tracker_counts_boundaries() {
        let mut t = OnlineMacroTracker::new(2);
        assert_eq!(t.observe(1, &[0], 0), None);
        assert_eq!(t.observe(2, &[1], 0), Some(2));
        assert_eq!(t.completed(), 1);
        assert_eq!(t.last_boundary(), 2);
        // Next macro needs labels >= 2.
        assert_eq!(t.observe(3, &[0, 1], 1), None); // stale: ignored
        assert_eq!(t.observe(4, &[0, 1], 2), Some(4));
        assert_eq!(t.completed(), 2);
    }
}
