//! # asynciter-service
//!
//! The multi-tenant solver service: "millions of users" as a
//! benchmarkable scenario. Tenants submit jobs — a catalog problem, a
//! deterministic backend, a delay model, a tenant seed — into a bounded
//! admission queue with backpressure; the service runs them as
//! concurrent `Session`s, leasing per-job scratch workspaces from a
//! recycling pool (so the PR 5 allocation-free discipline holds
//! *across* tenants, not just within a run), and streams compact
//! batched records out through `asynciter_report::stream`.
//!
//! The load-bearing contract is **tenant isolation as bit-identity**:
//! every per-tenant report from a service run — deterministic or
//! free-running — must be bitwise equal to a solo run of the same spec.
//! [`verify::check_outcome`] makes the contract executable, and the
//! scratch pool's planted dirty-lease bug
//! (`ServiceConfig::inject_scratch_leak`) proves the check has teeth.
//!
//! - [`catalog`] — shared calibrated problem instances.
//! - [`spec`] — validated job specifications (exact error messages).
//! - [`service`] — admission queue, deterministic / free-running drains,
//!   pooled workspaces, batched streaming.
//! - [`verify`] — the solo-diff tenant-equivalence oracle.
//! - [`error`] — every refusal, with pinned messages.

#![deny(missing_docs)]
#![warn(clippy::all)]
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod catalog;
pub mod error;
pub mod service;
pub mod spec;
pub mod verify;

pub use catalog::{Catalog, CatalogEntry, ProblemId};
pub use error::{Result, ServiceError};
pub use service::{CompletedJob, Service, ServiceConfig, ServiceMode, ServiceOutcome};
pub use spec::{BackendSpec, DelaySpec, JobSpec, ScheduleSpec};
pub use verify::{check_outcome, diff_reports, solo_report, Divergence};
