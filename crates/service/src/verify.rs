//! The tenant-isolation contract, made checkable: solo re-execution and
//! bitwise diffing.
//!
//! A service run is *isolated* iff every tenant's report is bit-identical
//! to what a solo [`crate::spec::JobSpec::execute`] of the same spec
//! produces — same final iterate bits, same step count, same residual
//! bits, same macro-iteration count. [`check_outcome`] re-runs every
//! completed job solo (fresh buffers, no pool, no neighbours) and
//! reports each [`Divergence`]. The conformance tier wraps this with
//! trace shrinking; the CLI wires it behind `--verify`.

use crate::catalog::Catalog;
use crate::error::Result;
use crate::service::ServiceOutcome;
use crate::spec::JobSpec;
use asynciter_core::session::{RecordMode, RunReport};

/// One field where a service run's report differs from the solo run.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// The diverging tenant.
    pub tenant: u64,
    /// The diverging job.
    pub job: u64,
    /// Which report field differed (`"final_x"`, `"steps"`, …).
    pub field: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tenant {} job {}: {} diverged from the solo run ({})",
            self.tenant, self.job, self.field, self.detail
        )
    }
}

/// Runs `spec` solo — fresh canonical start, no pool, no service — the
/// reference execution the isolation contract compares against.
///
/// # Errors
/// Whatever the backend reports.
pub fn solo_report(catalog: &Catalog, spec: &JobSpec, record: RecordMode) -> Result<RunReport> {
    let entry = catalog.get(spec.problem);
    spec.execute(catalog, &entry.x0, record)
}

/// Diffs a service report against its solo reference, bit for bit.
pub fn diff_reports(
    spec: &JobSpec,
    job: u64,
    service: &RunReport,
    solo: &RunReport,
) -> Vec<Divergence> {
    let mut out = Vec::new();
    let mut push = |field: &'static str, detail: String| {
        out.push(Divergence {
            tenant: spec.tenant,
            job,
            field,
            detail,
        });
    };
    if service.final_x != solo.final_x
        || service
            .final_x
            .iter()
            .zip(&solo.final_x)
            .any(|(a, b)| a.to_bits() != b.to_bits())
    {
        let first = service
            .final_x
            .iter()
            .zip(&solo.final_x)
            .position(|(a, b)| a.to_bits() != b.to_bits());
        push(
            "final_x",
            match first {
                Some(i) => format!(
                    "component {i}: service {:e} vs solo {:e}",
                    service.final_x[i], solo.final_x[i]
                ),
                None => "length mismatch".into(),
            },
        );
    }
    if service.steps != solo.steps {
        push(
            "steps",
            format!("service {} vs solo {}", service.steps, solo.steps),
        );
    }
    if service.final_residual.to_bits() != solo.final_residual.to_bits() {
        push(
            "final_residual",
            format!(
                "service {:e} vs solo {:e}",
                service.final_residual, solo.final_residual
            ),
        );
    }
    if service.macro_iterations != solo.macro_iterations {
        push(
            "macro_iterations",
            format!(
                "service {} vs solo {}",
                service.macro_iterations, solo.macro_iterations
            ),
        );
    }
    if service.stopped_early != solo.stopped_early {
        push(
            "stopped_early",
            format!(
                "service {} vs solo {}",
                service.stopped_early, solo.stopped_early
            ),
        );
    }
    out
}

/// Checks the isolation contract over a whole drained outcome: every
/// ok job is re-run solo and diffed bitwise. Returns every divergence
/// found (empty = isolated). Failed/cancelled jobs are skipped — they
/// carry no payload to compare.
pub fn check_outcome(catalog: &Catalog, outcome: &ServiceOutcome) -> Vec<Divergence> {
    let mut divergences = Vec::new();
    for completed in &outcome.jobs {
        let Some(report) = &completed.report else {
            continue;
        };
        let record = if completed.spec.record {
            RecordMode::Full
        } else {
            RecordMode::Off
        };
        match solo_report(catalog, &completed.spec, record) {
            Ok(solo) => {
                divergences.extend(diff_reports(
                    &completed.spec,
                    completed.record.job,
                    report,
                    &solo,
                ));
            }
            Err(e) => divergences.push(Divergence {
                tenant: completed.spec.tenant,
                job: completed.record.job,
                field: "solo",
                detail: format!("solo re-run failed: {e}"),
            }),
        }
    }
    divergences
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ProblemId;
    use crate::service::{Service, ServiceConfig, ServiceMode};
    use crate::spec::{BackendSpec, DelaySpec, ScheduleSpec};
    use asynciter_runtime::ApplyPolicy;

    fn mixed_spec(t: u64) -> JobSpec {
        let problem = ProblemId::ALL[(t as usize) % ProblemId::ALL.len()];
        let backend = match t % 3 {
            0 => BackendSpec::Replay {
                schedule: ScheduleSpec::Chaotic {
                    k_min: 1,
                    k_max: 4,
                    b: 6,
                },
            },
            1 => BackendSpec::Flexible {
                m: 3,
                partial: true,
            },
            _ => BackendSpec::Cluster {
                workers: 3,
                delay: DelaySpec::Jitter { lo: 1, hi: 4 },
                hold_prob: 0.15,
                drop_prob: 0.05,
                policy: ApplyPolicy::KeepFreshest,
            },
        };
        JobSpec {
            tenant: t,
            seed: 7_000 + t,
            problem,
            backend,
            record: false,
        }
    }

    #[test]
    fn clean_service_runs_are_isolated() {
        for mode in [
            ServiceMode::Deterministic { seed: 3 },
            ServiceMode::FreeRunning { workers: 3 },
        ] {
            let mut svc = Service::new(ServiceConfig {
                mode,
                ..ServiceConfig::default()
            });
            for t in 0..10 {
                svc.submit(mixed_spec(t)).unwrap();
            }
            let out = svc.drain();
            assert_eq!(out.doc.completed, 10, "{mode:?}");
            let divergences = check_outcome(svc.catalog(), &out);
            assert!(divergences.is_empty(), "{mode:?}: {divergences:?}");
        }
    }

    #[test]
    fn the_planted_scratch_leak_is_caught() {
        let mut svc = Service::new(ServiceConfig {
            inject_scratch_leak: true,
            ..ServiceConfig::default()
        });
        // Same-dimension jobs so the recycled buffer is reused as-is.
        for t in 0..6 {
            let mut spec = mixed_spec(t * 3); // all replay/jacobi-family stride
            spec.problem = ProblemId::Jacobi;
            spec.tenant = t;
            svc.submit(spec).unwrap();
        }
        let out = svc.drain();
        let divergences = check_outcome(svc.catalog(), &out);
        assert!(
            !divergences.is_empty(),
            "dirty leases must break bit-identity"
        );
        let d = &divergences[0];
        assert!(d.to_string().contains("diverged from the solo run"), "{d}");
    }
}
