//! The serving problem catalog: one shared, immutable instance per
//! problem family.
//!
//! A thousand-tenant sweep must not build a thousand operators — the
//! catalog constructs each calibrated instance once (the same
//! instances the conformance tier sweeps, minus the exact-solve
//! references the service never reads) and every job of that family
//! borrows it. [`Operator`] is `Sync`, so free-running workers share
//! entries without copies.
//!
//! Calibrations are sized for single-core CI: small dimensions, with
//! residual *targets* (not fixed budgets) wherever the backend supports
//! stopping, so converged jobs finish in hundreds of steps while the
//! budget only bounds the pathological tail.

use asynciter_opt::lasso::LassoProblem;
use asynciter_opt::linear::JacobiOperator;
use asynciter_opt::logistic::LogisticGradOperator;
use asynciter_opt::network_flow::{NetworkFlowProblem, PriceRelaxation};
use asynciter_opt::obstacle::{ObstacleProblem, ProjectedJacobi};
use asynciter_opt::prox::L1;
use asynciter_opt::proxgrad::{gamma_max, SparseProxGrad};
use asynciter_opt::traits::{Operator, SmoothObjective};

/// The problem axis a job spec can name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProblemId {
    /// Diagonally dominant tridiagonal system, Jacobi operator (n=16).
    Jacobi,
    /// Lasso regression via the sparse prox-gradient operator (n=12).
    Lasso,
    /// Membrane obstacle problem, projected Jacobi (6×6 grid).
    Obstacle,
    /// Certified ℓ₂-regularised logistic regression (n=8, m=48).
    Logistic,
    /// Min-cost network flow dual prices on the 12-spoke wheel.
    NetworkFlow,
}

impl ProblemId {
    /// Every family, sweep order.
    pub const ALL: [ProblemId; 5] = [
        ProblemId::Jacobi,
        ProblemId::Lasso,
        ProblemId::Obstacle,
        ProblemId::Logistic,
        ProblemId::NetworkFlow,
    ];

    /// Stable identifier for records and CLI flags.
    pub fn id(self) -> &'static str {
        match self {
            ProblemId::Jacobi => "jacobi",
            ProblemId::Lasso => "lasso",
            ProblemId::Obstacle => "obstacle",
            ProblemId::Logistic => "logistic",
            ProblemId::NetworkFlow => "network-flow",
        }
    }

    /// Parses a CLI identifier.
    pub fn parse(text: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.id() == text)
    }

    /// Index into [`Catalog`] storage.
    fn index(self) -> usize {
        match self {
            ProblemId::Jacobi => 0,
            ProblemId::Lasso => 1,
            ProblemId::Obstacle => 2,
            ProblemId::Logistic => 3,
            ProblemId::NetworkFlow => 4,
        }
    }
}

/// One shared problem instance plus its serving calibration.
pub struct CatalogEntry {
    /// Which family this is.
    pub id: ProblemId,
    /// The fixed-point operator (shared across all jobs of the family).
    pub op: Box<dyn Operator>,
    /// Canonical start. All-zero except the obstacle problem (whose
    /// canonical start is the projected upper bound).
    pub x0: Vec<f64>,
    /// Residual target for stopping-capable backends.
    pub target: f64,
    /// Step budget bounding the worst case.
    pub budget: u64,
    /// Fixed budget for the flexible backend (no stopping support).
    pub flex_budget: u64,
}

impl CatalogEntry {
    /// Dimension `n`.
    pub fn n(&self) -> usize {
        self.op.dim()
    }

    /// Whether the canonical start is the zero vector — in that case a
    /// clean pooled workspace *is* the start, bit for bit.
    pub fn zero_start(&self) -> bool {
        self.x0.iter().all(|&v| v == 0.0)
    }
}

/// The service's shared, immutable problem instances.
pub struct Catalog {
    entries: Vec<CatalogEntry>,
}

impl Catalog {
    /// Builds every calibrated instance (once per service).
    ///
    /// # Panics
    /// Panics only if the static instances fail to construct (a bug).
    pub fn new() -> Self {
        let entries = ProblemId::ALL
            .into_iter()
            .map(|id| match id {
                ProblemId::Jacobi => {
                    let n = 16;
                    let op = JacobiOperator::new(
                        asynciter_numerics::sparse::tridiagonal(n, 4.0, -1.0),
                        vec![1.0; n],
                    )
                    .expect("static Jacobi instance");
                    CatalogEntry {
                        id,
                        x0: vec![0.0; n],
                        op: Box::new(op),
                        target: 1e-8,
                        budget: 6_000,
                        flex_budget: 1_200,
                    }
                }
                ProblemId::Lasso => {
                    let (n, m, k) = (12, 72, 3);
                    let problem = LassoProblem::random(n, m, k, 0.05, 0.01, 7)
                        .expect("static lasso instance");
                    let q = problem.quadratic.clone();
                    let gamma = 0.9 * gamma_max(q.strong_convexity(), q.lipschitz());
                    let op = SparseProxGrad::new(q, L1::new(problem.lambda), gamma)
                        .expect("gamma within Theorem-1 range");
                    CatalogEntry {
                        id,
                        x0: vec![0.0; n],
                        op: Box::new(op),
                        target: 1e-7,
                        budget: 8_000,
                        flex_budget: 1_200,
                    }
                }
                ProblemId::Obstacle => {
                    let g = 6;
                    let problem =
                        ObstacleProblem::bump(g, g, 0.6).expect("static obstacle instance");
                    let op = ProjectedJacobi::new(problem);
                    CatalogEntry {
                        id,
                        x0: op.upper_start(),
                        op: Box::new(op),
                        target: 1e-6,
                        budget: 30_000,
                        flex_budget: 2_000,
                    }
                }
                ProblemId::Logistic => {
                    let (n, m) = (8, 48);
                    let op = LogisticGradOperator::certified_random(n, m, 2.0, 13)
                        .expect("certified logistic instance");
                    CatalogEntry {
                        id,
                        x0: vec![0.0; n],
                        op: Box::new(op),
                        target: 1e-7,
                        budget: 8_000,
                        flex_budget: 1_200,
                    }
                }
                ProblemId::NetworkFlow => {
                    let problem = NetworkFlowProblem::wheel(12, 21).expect("static wheel instance");
                    let op = PriceRelaxation::new(problem, 0).expect("hub-grounded relaxation");
                    CatalogEntry {
                        id,
                        x0: vec![0.0; op.dim()],
                        op: Box::new(op),
                        target: 1e-7,
                        budget: 10_000,
                        flex_budget: 1_500,
                    }
                }
            })
            .collect();
        Self { entries }
    }

    /// The entry for `id`.
    pub fn get(&self, id: ProblemId) -> &CatalogEntry {
        &self.entries[id.index()]
    }

    /// Largest `n + scratch_len` over the catalog — the workspace size
    /// that makes one warm pool buffer serve every family.
    pub fn max_workspace_len(&self) -> usize {
        self.entries
            .iter()
            .map(|e| e.n() + e.op.scratch_len())
            .max()
            .unwrap_or(0)
    }
}

impl Default for Catalog {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_builds_consistent_entries() {
        let catalog = Catalog::new();
        for id in ProblemId::ALL {
            let e = catalog.get(id);
            assert_eq!(e.id, id);
            assert_eq!(e.x0.len(), e.n(), "{}", id.id());
            assert!(e.target > 0.0 && e.budget > 0 && e.flex_budget > 0);
            assert_eq!(ProblemId::parse(id.id()), Some(id));
        }
        assert!(catalog.max_workspace_len() >= 16);
        assert!(ProblemId::parse("nope").is_none());
        assert!(!catalog.get(ProblemId::Obstacle).zero_start());
        assert!(catalog.get(ProblemId::Jacobi).zero_start());
    }
}
