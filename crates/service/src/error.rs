//! Service-layer errors with pinned, testable messages.
//!
//! Every rejection path a caller can hit — backpressure, malformed
//! specs, cancellation — renders an exact message that the error-path
//! tests (and the CLI's exit-code tests) assert verbatim, in the same
//! style as the model checker's CLI errors.

use std::fmt;

/// Everything the service can refuse to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The bounded admission queue is at capacity (backpressure: the
    /// caller must retry later or shed load).
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The job spec failed validation; the message names the field.
    InvalidJob {
        /// What was wrong.
        message: String,
    },
    /// A cancel was issued for a tenant with nothing queued.
    NothingQueued {
        /// The tenant named by the cancel.
        tenant: u64,
    },
    /// The backend reported an error while running an admitted job.
    Backend {
        /// The backend's own message.
        message: String,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::QueueFull { capacity } => write!(
                f,
                "queue full: capacity {capacity} reached, job rejected (backpressure)"
            ),
            ServiceError::InvalidJob { message } => write!(f, "invalid job spec: {message}"),
            ServiceError::NothingQueued { tenant } => {
                write!(f, "nothing queued for tenant {tenant}")
            }
            ServiceError::Backend { message } => write!(f, "backend error: {message}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, ServiceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_pinned() {
        assert_eq!(
            ServiceError::QueueFull { capacity: 4 }.to_string(),
            "queue full: capacity 4 reached, job rejected (backpressure)"
        );
        assert_eq!(
            ServiceError::InvalidJob {
                message: "workers must be >= 1 (got 0)".into()
            }
            .to_string(),
            "invalid job spec: workers must be >= 1 (got 0)"
        );
        assert_eq!(
            ServiceError::NothingQueued { tenant: 7 }.to_string(),
            "nothing queued for tenant 7"
        );
    }
}
