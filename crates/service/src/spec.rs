//! Job specifications: what a tenant submits.
//!
//! A [`JobSpec`] is pure data — problem id, backend choice, delay
//! model, tenant seed — so it can be validated before admission,
//! carried across worker threads, and re-executed solo by the
//! equivalence oracle. Validation failures render exact messages
//! (`invalid job spec: …`) that the error-path tests pin verbatim.
//!
//! Only deterministic backends are admissible: a service job must be
//! exactly reproducible from its spec, because the tenant-isolation
//! contract is *bit-identity with a solo run of the same spec*. The
//! racy `ThreadedCluster` (whose runs are reproducible only from their
//! recorded traces, not from config) is therefore not representable
//! here.

use crate::catalog::{Catalog, ProblemId};
use crate::error::{Result, ServiceError};
use asynciter_core::session::{Flexible, RecordMode, Replay, RunReport, Session};
use asynciter_core::stopping::StoppingRule;
use asynciter_models::schedule::{ChaoticBounded, SyncJacobi};
use asynciter_runtime::{ApplyPolicy, Cluster, LinkModel};
use std::cmp::Ordering;

/// How often stopping-capable backends check the residual target.
const CHECK_EVERY: u64 = 16;

/// Per-message link latency for cluster jobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DelaySpec {
    /// Constant latency (in-order, bounded staleness).
    Fixed {
        /// Latency in steps.
        ticks: u64,
    },
    /// Uniform latency in `[lo, hi]` (mild reordering).
    Jitter {
        /// Minimum latency.
        lo: u64,
        /// Maximum latency.
        hi: u64,
    },
    /// Pareto-tailed latency (unbounded delays).
    HeavyTail {
        /// Scale (minimum latency).
        scale: u64,
        /// Pareto shape; must be positive.
        alpha: f64,
    },
}

impl DelaySpec {
    fn to_link(self) -> LinkModel {
        match self {
            DelaySpec::Fixed { ticks } => LinkModel::Fixed { ticks },
            DelaySpec::Jitter { lo, hi } => LinkModel::Jitter { lo, hi },
            DelaySpec::HeavyTail { scale, alpha } => LinkModel::HeavyTail { scale, alpha },
        }
    }

    fn validate(&self) -> Result<()> {
        match *self {
            DelaySpec::Fixed { .. } => Ok(()),
            DelaySpec::Jitter { lo, hi } if hi < lo => Err(ServiceError::InvalidJob {
                message: format!("jitter delay needs lo <= hi (got lo {lo}, hi {hi})"),
            }),
            DelaySpec::Jitter { .. } => Ok(()),
            DelaySpec::HeavyTail { alpha, .. }
                if alpha.partial_cmp(&0.0) != Some(Ordering::Greater) =>
            {
                Err(ServiceError::InvalidJob {
                    message: format!("heavy-tail alpha must be positive (got {alpha})"),
                })
            }
            DelaySpec::HeavyTail { .. } => Ok(()),
        }
    }
}

/// Schedule steering for replay jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleSpec {
    /// Synchronous Jacobi sweeps (one macro-iteration per step).
    Sync,
    /// Seeded chaotic steering with bounded staleness.
    Chaotic {
        /// Minimum active-set size per step.
        k_min: usize,
        /// Maximum active-set size per step.
        k_max: usize,
        /// Staleness bound `b ≥ 1`.
        b: u64,
    },
}

/// Which deterministic engine runs the job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BackendSpec {
    /// Definition-1 replay over a generated schedule.
    Replay {
        /// The schedule steering.
        schedule: ScheduleSpec,
    },
    /// Definition-3 flexible communication (fixed budget; the engine
    /// does not support stopping rules).
    Flexible {
        /// Inner iterations per outer update (`m ≥ 1`).
        m: usize,
        /// Publish mid-phase partials.
        partial: bool,
    },
    /// The deterministic sharded message-passing cluster.
    Cluster {
        /// Worker (= shard) count.
        workers: usize,
        /// Link latency model.
        delay: DelaySpec,
        /// Probability a delivery is held back (reordering).
        hold_prob: f64,
        /// Probability a delivery is dropped.
        drop_prob: f64,
        /// Receiver policy.
        policy: ApplyPolicy,
    },
}

impl BackendSpec {
    /// Stable backend identifier for records.
    pub fn id(&self) -> &'static str {
        match self {
            BackendSpec::Replay { .. } => "replay",
            BackendSpec::Flexible { .. } => "flexible",
            BackendSpec::Cluster { .. } => "cluster",
        }
    }
}

/// One tenant's admitted unit of work.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The submitting tenant.
    pub tenant: u64,
    /// The tenant's seed (drives every seeded choice the job makes).
    pub seed: u64,
    /// Which catalog instance to solve.
    pub problem: ProblemId,
    /// Which engine to run it on.
    pub backend: BackendSpec,
    /// Whether to keep the full trace (needed when a divergence must be
    /// shrunk; costs memory on large sweeps).
    pub record: bool,
}

impl JobSpec {
    /// Validates the spec against the catalog (dimension-dependent
    /// bounds included). Messages are exact and pinned by tests.
    ///
    /// # Errors
    /// [`ServiceError::InvalidJob`] naming the offending field.
    pub fn validate(&self, catalog: &Catalog) -> Result<()> {
        let n = catalog.get(self.problem).n();
        let invalid = |message: String| Err(ServiceError::InvalidJob { message });
        match self.backend {
            BackendSpec::Replay {
                schedule: ScheduleSpec::Sync,
            } => Ok(()),
            BackendSpec::Replay {
                schedule: ScheduleSpec::Chaotic { k_min, k_max, b },
            } => {
                if k_min < 1 || k_min > k_max || k_max > n {
                    return invalid(format!(
                        "chaotic schedule needs 1 <= k_min <= k_max <= n={n} \
                         (got k_min {k_min}, k_max {k_max})"
                    ));
                }
                if b < 1 {
                    return invalid(format!("staleness bound b must be >= 1 (got {b})"));
                }
                Ok(())
            }
            BackendSpec::Flexible { m, .. } => {
                if m < 1 {
                    return invalid(format!("flexible m must be >= 1 (got {m})"));
                }
                Ok(())
            }
            BackendSpec::Cluster {
                workers,
                delay,
                hold_prob,
                drop_prob,
                ..
            } => {
                if workers < 1 || workers > n {
                    return invalid(format!(
                        "cluster workers must be in 1..=n={n} (got {workers})"
                    ));
                }
                for (name, p) in [("hold_prob", hold_prob), ("drop_prob", drop_prob)] {
                    if !(0.0..=1.0).contains(&p) {
                        return invalid(format!("{name} must be in [0, 1] (got {p})"));
                    }
                }
                delay.validate()
            }
        }
    }

    /// Executes the spec on an explicit start vector (the service stages
    /// `x0` in a pooled workspace; solo runs pass the canonical start).
    /// Deterministic: same spec + same `x0` bits ⇒ same report bits.
    ///
    /// # Errors
    /// [`ServiceError::Backend`] wrapping whatever the engine reports.
    pub fn execute(&self, catalog: &Catalog, x0: &[f64], record: RecordMode) -> Result<RunReport> {
        let entry = catalog.get(self.problem);
        let n = entry.n();
        let session = Session::new(entry.op.as_ref())
            .x0(x0)
            .record(record)
            .seed(self.seed);
        let session = match self.backend {
            BackendSpec::Replay { schedule } => {
                let session = match schedule {
                    ScheduleSpec::Sync => session.schedule(SyncJacobi::new(n)),
                    ScheduleSpec::Chaotic { k_min, k_max, b } => {
                        session.schedule(ChaoticBounded::new(n, k_min, k_max, b, false, self.seed))
                    }
                };
                session
                    .steps(entry.budget)
                    .stopping(StoppingRule::Residual {
                        eps: entry.target,
                        check_every: CHECK_EVERY,
                    })
                    .backend(Replay)
            }
            BackendSpec::Flexible { m, partial } => {
                session.steps(entry.flex_budget).backend(Flexible {
                    m,
                    partial,
                    ..Flexible::default()
                })
            }
            BackendSpec::Cluster {
                workers,
                delay,
                hold_prob,
                drop_prob,
                policy,
            } => session
                .steps(entry.budget)
                .stopping(StoppingRule::Residual {
                    eps: entry.target,
                    check_every: CHECK_EVERY,
                })
                .backend(Cluster {
                    workers,
                    link: delay.to_link(),
                    hold_prob,
                    drop_prob,
                    apply_policy: policy,
                    ..Cluster::default()
                }),
        };
        session.run().map_err(|e| ServiceError::Backend {
            message: e.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        Catalog::new()
    }

    fn base(backend: BackendSpec) -> JobSpec {
        JobSpec {
            tenant: 1,
            seed: 9,
            problem: ProblemId::Jacobi,
            backend,
            record: false,
        }
    }

    #[test]
    fn malformed_specs_render_exact_messages() {
        let catalog = catalog();
        let cases: &[(BackendSpec, &str)] = &[
            (
                BackendSpec::Replay {
                    schedule: ScheduleSpec::Chaotic {
                        k_min: 0,
                        k_max: 4,
                        b: 2,
                    },
                },
                "invalid job spec: chaotic schedule needs 1 <= k_min <= k_max <= n=16 \
                 (got k_min 0, k_max 4)",
            ),
            (
                BackendSpec::Replay {
                    schedule: ScheduleSpec::Chaotic {
                        k_min: 1,
                        k_max: 17,
                        b: 2,
                    },
                },
                "invalid job spec: chaotic schedule needs 1 <= k_min <= k_max <= n=16 \
                 (got k_min 1, k_max 17)",
            ),
            (
                BackendSpec::Replay {
                    schedule: ScheduleSpec::Chaotic {
                        k_min: 1,
                        k_max: 4,
                        b: 0,
                    },
                },
                "invalid job spec: staleness bound b must be >= 1 (got 0)",
            ),
            (
                BackendSpec::Flexible {
                    m: 0,
                    partial: true,
                },
                "invalid job spec: flexible m must be >= 1 (got 0)",
            ),
            (
                BackendSpec::Cluster {
                    workers: 0,
                    delay: DelaySpec::Fixed { ticks: 1 },
                    hold_prob: 0.0,
                    drop_prob: 0.0,
                    policy: ApplyPolicy::AsReceived,
                },
                "invalid job spec: cluster workers must be in 1..=n=16 (got 0)",
            ),
            (
                BackendSpec::Cluster {
                    workers: 2,
                    delay: DelaySpec::Fixed { ticks: 1 },
                    hold_prob: 1.5,
                    drop_prob: 0.0,
                    policy: ApplyPolicy::AsReceived,
                },
                "invalid job spec: hold_prob must be in [0, 1] (got 1.5)",
            ),
            (
                BackendSpec::Cluster {
                    workers: 2,
                    delay: DelaySpec::Jitter { lo: 5, hi: 2 },
                    hold_prob: 0.0,
                    drop_prob: 0.0,
                    policy: ApplyPolicy::AsReceived,
                },
                "invalid job spec: jitter delay needs lo <= hi (got lo 5, hi 2)",
            ),
            (
                BackendSpec::Cluster {
                    workers: 2,
                    delay: DelaySpec::HeavyTail {
                        scale: 1,
                        alpha: 0.0,
                    },
                    hold_prob: 0.0,
                    drop_prob: 0.0,
                    policy: ApplyPolicy::AsReceived,
                },
                "invalid job spec: heavy-tail alpha must be positive (got 0)",
            ),
        ];
        for (backend, expect) in cases {
            let err = base(*backend).validate(&catalog).unwrap_err();
            assert_eq!(err.to_string(), *expect);
        }
    }

    #[test]
    fn valid_specs_pass_and_execute_deterministically() {
        let catalog = catalog();
        let spec = base(BackendSpec::Cluster {
            workers: 4,
            delay: DelaySpec::Jitter { lo: 1, hi: 4 },
            hold_prob: 0.2,
            drop_prob: 0.05,
            policy: ApplyPolicy::AsReceived,
        });
        spec.validate(&catalog).unwrap();
        let x0 = vec![0.0; 16];
        let a = spec.execute(&catalog, &x0, RecordMode::Off).unwrap();
        let b = spec.execute(&catalog, &x0, RecordMode::Off).unwrap();
        assert_eq!(a.final_x, b.final_x, "bitwise reproducible from spec");
        assert_eq!(a.steps, b.steps);
        assert!(a.stopped_early, "residual target fired");
    }

    #[test]
    fn execution_depends_on_the_start_bits() {
        // The leak-detection premise: a different x0 produces different
        // final bits (here: steps differ because the target fires at
        // once from an already-converged start).
        let catalog = catalog();
        let spec = base(BackendSpec::Replay {
            schedule: ScheduleSpec::Sync,
        });
        let clean = spec.execute(&catalog, &[0.0; 16], RecordMode::Off).unwrap();
        let dirty = spec
            .execute(&catalog, &clean.final_x, RecordMode::Off)
            .unwrap();
        assert_ne!(clean.steps, dirty.steps);
    }
}
