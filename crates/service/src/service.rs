//! The multi-tenant service: bounded admission, two execution modes,
//! pooled workspaces, batched streaming.
//!
//! Life of a job: [`Service::submit`] validates the spec and admits it
//! into the bounded queue (rejecting with backpressure when full, exact
//! message pinned); [`Service::drain`] executes everything admitted —
//! sequentially in seeded order under
//! [`ServiceMode::Deterministic`], or over free-running worker threads
//! under [`ServiceMode::FreeRunning`] — leasing each job's workspace
//! (`x0` staging plus operator scratch) from one shared
//! [`ScratchPool`], and flushes compact records in
//! completion-order batches into a [`ServiceDoc`].
//!
//! The isolation contract either mode must uphold: every per-tenant
//! [`RunReport`] is **bit-identical** to a solo run of the same spec
//! (see [`crate::verify`]). Determinism lives in the specs (seeded
//! engines) and the clean-lease guarantee of the pool; the free-running
//! mode only reorders *completions*, never payloads.

use crate::catalog::Catalog;
use crate::error::{Result, ServiceError};
use crate::spec::JobSpec;
use asynciter_core::session::{RecordMode, RunReport};
use asynciter_report::stream::{hash_f64s, ServiceBatch, ServiceDoc, ServiceRecord};
use asynciter_report::SCHEMA_VERSION;
use asynciter_runtime::ScratchPool;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How admitted jobs are executed at drain time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceMode {
    /// Single-threaded, seeded admission order, virtual clock — every
    /// field of the outcome except wall-clock is a pure function of
    /// (submissions, seed). This is the mode the conformance machinery
    /// and the committed baseline pin.
    Deterministic {
        /// Seed for the admission-order shuffle.
        seed: u64,
    },
    /// Free-running worker threads over the shared queue. Per-tenant
    /// payloads stay bit-identical to solo runs; only completion order
    /// (and therefore batch composition) is scheduling-dependent.
    FreeRunning {
        /// Worker thread count (`≥ 1`).
        workers: usize,
    },
}

/// Service construction knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Bounded queue capacity; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Records per streamed batch flush.
    pub batch_size: usize,
    /// Execution mode.
    pub mode: ServiceMode,
    /// **Negative control only**: plant the dirty-lease scratch-pool
    /// bug (see `ScratchPool::inject_dirty_leases`) so tests can prove
    /// the equivalence oracle catches cross-tenant leaks.
    pub inject_scratch_leak: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 1024,
            batch_size: 64,
            mode: ServiceMode::Deterministic { seed: 0 },
            inject_scratch_leak: false,
        }
    }
}

/// A job that made it past admission.
#[derive(Debug, Clone)]
struct AdmittedJob {
    job: u64,
    submitted_at: u64,
    spec: JobSpec,
}

/// One drained job: the streamed record plus (for ok runs) the full
/// report the equivalence oracle diffs against solo executions.
#[derive(Debug, Clone)]
pub struct CompletedJob {
    /// The spec as admitted.
    pub spec: JobSpec,
    /// The compact streamed record.
    pub record: ServiceRecord,
    /// The full report (`None` for cancelled/failed jobs).
    pub report: Option<RunReport>,
    /// The exact start vector the job ran from (captured only for
    /// recorded jobs): with a healthy pool these are the canonical
    /// start's bits, and under the planted dirty-lease bug they are the
    /// leaked evidence the shrinker replays against.
    pub x0: Option<Vec<f64>>,
}

/// Everything a drain produces.
#[derive(Debug, Clone)]
pub struct ServiceOutcome {
    /// The streamed document (`BENCH_service.json` shape).
    pub doc: ServiceDoc,
    /// Per-job details in completion order (cancelled jobs last).
    pub jobs: Vec<CompletedJob>,
}

/// The multi-tenant solver service.
pub struct Service {
    catalog: Catalog,
    cfg: ServiceConfig,
    queue: VecDeque<AdmittedJob>,
    cancelled: Vec<AdmittedJob>,
    pool: ScratchPool,
    clock: AtomicU64,
    next_job: u64,
    rejected: u64,
}

impl Service {
    /// A service over a freshly built [`Catalog`].
    pub fn new(cfg: ServiceConfig) -> Self {
        let pool = ScratchPool::new();
        if cfg.inject_scratch_leak {
            pool.inject_dirty_leases(true);
        }
        Self {
            catalog: Catalog::new(),
            cfg,
            queue: VecDeque::new(),
            cancelled: Vec::new(),
            pool,
            clock: AtomicU64::new(0),
            next_job: 0,
            rejected: 0,
        }
    }

    /// The shared problem catalog (solo runs for the oracle use the
    /// same instances).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The workspace pool (stats are interesting in tests).
    pub fn pool(&self) -> &ScratchPool {
        &self.pool
    }

    /// Jobs currently queued.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Validates and admits a job, stamping its id and virtual
    /// admission tick. Backpressure: a full queue rejects.
    ///
    /// # Errors
    /// [`ServiceError::InvalidJob`] or [`ServiceError::QueueFull`]
    /// (both counted as rejections in the drained document).
    pub fn submit(&mut self, spec: JobSpec) -> Result<u64> {
        if let Err(e) = spec.validate(&self.catalog) {
            self.rejected += 1;
            return Err(e);
        }
        if self.queue.len() >= self.cfg.queue_capacity {
            self.rejected += 1;
            return Err(ServiceError::QueueFull {
                capacity: self.cfg.queue_capacity,
            });
        }
        let job = self.next_job;
        self.next_job += 1;
        let submitted_at = self.clock.fetch_add(1, Ordering::Relaxed);
        self.queue.push_back(AdmittedJob {
            job,
            submitted_at,
            spec,
        });
        Ok(job)
    }

    /// Cancels every queued job of `tenant` (mid-run: jobs already
    /// draining are not interrupted — cancellation is an admission-queue
    /// operation). Returns how many jobs were cancelled.
    ///
    /// # Errors
    /// [`ServiceError::NothingQueued`] when the tenant has no queued
    /// jobs.
    pub fn cancel(&mut self, tenant: u64) -> Result<usize> {
        let before = self.queue.len();
        let (cancelled, kept): (Vec<_>, Vec<_>) =
            self.queue.drain(..).partition(|a| a.spec.tenant == tenant);
        self.queue = kept.into();
        if cancelled.is_empty() {
            debug_assert_eq!(before, self.queue.len());
            return Err(ServiceError::NothingQueued { tenant });
        }
        let count = cancelled.len();
        self.cancelled.extend(cancelled);
        Ok(count)
    }

    /// Executes everything admitted and streams the outcome. The
    /// service is reusable afterwards (queue empty, counters reset).
    pub fn drain(&mut self) -> ServiceOutcome {
        let start = Instant::now();
        let mut jobs: Vec<AdmittedJob> = self.queue.drain(..).collect();
        let tenants = {
            let mut ids: Vec<u64> = jobs
                .iter()
                .chain(self.cancelled.iter())
                .map(|a| a.spec.tenant)
                .collect();
            ids.sort_unstable();
            ids.dedup();
            ids.len() as u64
        };
        let workers = match self.cfg.mode {
            ServiceMode::Deterministic { seed } => {
                shuffle(&mut jobs, seed);
                1
            }
            ServiceMode::FreeRunning { workers } => workers.max(1),
        };

        let mut done: Vec<CompletedJob> = match self.cfg.mode {
            ServiceMode::Deterministic { .. } => jobs
                .into_iter()
                .map(|a| run_one(&self.catalog, &self.pool, &self.clock, a))
                .collect(),
            ServiceMode::FreeRunning { .. } => {
                let shared: Mutex<VecDeque<AdmittedJob>> = Mutex::new(jobs.into());
                let results: Mutex<Vec<CompletedJob>> = Mutex::new(Vec::new());
                std::thread::scope(|scope| {
                    for _ in 0..workers {
                        scope.spawn(|| loop {
                            let next = shared.lock().expect("service queue poisoned").pop_front();
                            let Some(admitted) = next else { break };
                            let completed =
                                run_one(&self.catalog, &self.pool, &self.clock, admitted);
                            results
                                .lock()
                                .expect("service results poisoned")
                                .push(completed);
                            // Single-core CI: let siblings make progress.
                            std::thread::yield_now();
                        });
                    }
                });
                results.into_inner().expect("service results poisoned")
            }
        };

        // Cancelled jobs trail the stream with their own records.
        for admitted in self.cancelled.drain(..) {
            let completed_at = self.clock.fetch_add(1, Ordering::Relaxed);
            let tenant = admitted.spec.tenant;
            done.push(CompletedJob {
                record: ServiceRecord {
                    tenant,
                    job: admitted.job,
                    problem: admitted.spec.problem.id().into(),
                    backend: admitted.spec.backend.id().into(),
                    status: "cancelled".into(),
                    note: format!("job cancelled: tenant {tenant} cancelled before execution"),
                    seed: admitted.spec.seed,
                    steps: 0,
                    final_residual: f64::NAN,
                    final_x_hash: 0,
                    stopped_early: false,
                    submitted_at: admitted.submitted_at,
                    completed_at,
                    wall_secs: 0.0,
                },
                spec: admitted.spec,
                report: None,
                x0: None,
            });
        }

        let doc = self.assemble_doc(&done, tenants, workers, start.elapsed().as_secs_f64());
        self.rejected = 0;
        ServiceOutcome { doc, jobs: done }
    }

    fn assemble_doc(
        &self,
        done: &[CompletedJob],
        tenants: u64,
        workers: usize,
        wall_secs: f64,
    ) -> ServiceDoc {
        let batch_size = self.cfg.batch_size.max(1);
        let batches: Vec<ServiceBatch> = done
            .chunks(batch_size)
            .enumerate()
            .map(|(seq, chunk)| ServiceBatch {
                seq: seq as u64,
                records: chunk.iter().map(|c| c.record.clone()).collect(),
            })
            .collect();
        let completed = done.iter().filter(|c| c.record.status == "ok").count() as u64;
        let failed = done.iter().filter(|c| c.record.status == "failed").count() as u64;
        let cancelled = done
            .iter()
            .filter(|c| c.record.status == "cancelled")
            .count() as u64;
        let mut latencies: Vec<f64> = done
            .iter()
            .filter(|c| c.record.status == "ok")
            .map(|c| c.record.wall_secs)
            .collect();
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let pct = |q: f64| -> f64 {
            if latencies.is_empty() {
                0.0
            } else {
                let idx = ((latencies.len() - 1) as f64 * q).round() as usize;
                latencies[idx]
            }
        };
        ServiceDoc {
            schema_version: SCHEMA_VERSION,
            mode: match self.cfg.mode {
                ServiceMode::Deterministic { .. } => "deterministic".into(),
                ServiceMode::FreeRunning { .. } => "free-running".into(),
            },
            tenants,
            workers: workers as u64,
            queue_capacity: self.cfg.queue_capacity as u64,
            batch_size: batch_size as u64,
            completed,
            failed,
            rejected: self.rejected,
            cancelled,
            wall_secs,
            throughput: if wall_secs > 0.0 {
                completed as f64 / wall_secs
            } else {
                0.0
            },
            p50_latency_secs: pct(0.50),
            p95_latency_secs: pct(0.95),
            max_latency_secs: latencies.last().copied().unwrap_or(0.0),
            batches,
        }
    }
}

/// Seeded Fisher–Yates over the admitted jobs (the deterministic mode's
/// "seeded admission order").
fn shuffle(jobs: &mut [AdmittedJob], seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5E47_1CE0_5E55_1005);
    for i in (1..jobs.len()).rev() {
        let j = rng.random_range(0..=i);
        jobs.swap(i, j);
    }
}

/// Runs one admitted job on a pooled workspace:
/// `[x0 staging (n) | operator scratch]`. The staging half *is* the
/// job's start vector (clean leases are bitwise zero, matching the
/// catalog's canonical zero starts; non-zero starts are copied in), and
/// after the run the tenant's final iterate is re-verified through the
/// scratch half and left in staging — which is exactly the data the
/// planted dirty-lease bug would leak into the next tenant.
fn run_one(
    catalog: &Catalog,
    pool: &ScratchPool,
    clock: &AtomicU64,
    admitted: AdmittedJob,
) -> CompletedJob {
    let AdmittedJob {
        job,
        submitted_at,
        spec,
    } = admitted;
    let entry = catalog.get(spec.problem);
    let n = entry.n();
    let mut ws = pool.lease(n + entry.op.scratch_len());
    if !entry.zero_start() {
        ws[..n].copy_from_slice(&entry.x0);
    }
    let record_mode = if spec.record {
        RecordMode::Full
    } else {
        RecordMode::Off
    };
    let x0_used = spec.record.then(|| ws[..n].to_vec());
    let start = Instant::now();
    let result = spec.execute(catalog, &ws[..n], record_mode);
    let wall_secs = start.elapsed().as_secs_f64();
    let completed_at = clock.fetch_add(1, Ordering::Relaxed);
    let base = ServiceRecord {
        tenant: spec.tenant,
        job,
        problem: spec.problem.id().into(),
        backend: spec.backend.id().into(),
        status: String::new(),
        note: String::new(),
        seed: spec.seed,
        steps: 0,
        final_residual: f64::NAN,
        final_x_hash: 0,
        stopped_early: false,
        submitted_at,
        completed_at,
        wall_secs,
    };
    match result {
        Ok(report) => {
            let report = report.with_ids(spec.tenant, job);
            // Deposit the final iterate in staging and re-verify the
            // residual through the pooled scratch half — an integrity
            // check on the backend's own figure, alloc-free for
            // operators with a real scratch path.
            let (stage, scratch) = ws.split_at_mut(n);
            stage.copy_from_slice(&report.final_x);
            let recheck = entry.op.residual_inf_with(stage, scratch);
            let verified = recheck.to_bits() == report.final_residual.to_bits();
            let record = ServiceRecord {
                status: if verified { "ok" } else { "failed" }.into(),
                note: if verified {
                    String::new()
                } else {
                    format!(
                        "final residual re-verification failed: backend {} vs recheck {}",
                        report.final_residual, recheck
                    )
                },
                steps: report.steps,
                final_residual: report.final_residual,
                final_x_hash: hash_f64s(&report.final_x),
                stopped_early: report.stopped_early,
                ..base
            };
            CompletedJob {
                spec,
                record,
                report: Some(report),
                x0: x0_used,
            }
        }
        Err(e) => CompletedJob {
            spec,
            record: ServiceRecord {
                status: "failed".into(),
                note: e.to_string(),
                wall_secs,
                ..base
            },
            report: None,
            x0: x0_used,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ProblemId;
    use crate::spec::{BackendSpec, DelaySpec, ScheduleSpec};
    use asynciter_runtime::ApplyPolicy;

    fn jacobi_spec(tenant: u64) -> JobSpec {
        JobSpec {
            tenant,
            seed: 100 + tenant,
            problem: ProblemId::Jacobi,
            backend: BackendSpec::Replay {
                schedule: ScheduleSpec::Chaotic {
                    k_min: 2,
                    k_max: 6,
                    b: 4,
                },
            },
            record: false,
        }
    }

    #[test]
    fn backpressure_rejects_with_the_pinned_message() {
        let mut svc = Service::new(ServiceConfig {
            queue_capacity: 2,
            ..ServiceConfig::default()
        });
        svc.submit(jacobi_spec(1)).unwrap();
        svc.submit(jacobi_spec(2)).unwrap();
        let err = svc.submit(jacobi_spec(3)).unwrap_err();
        assert_eq!(
            err.to_string(),
            "queue full: capacity 2 reached, job rejected (backpressure)"
        );
        let out = svc.drain();
        assert_eq!(out.doc.rejected, 1);
        assert_eq!(out.doc.completed, 2);
    }

    #[test]
    fn invalid_specs_are_rejected_at_admission() {
        let mut svc = Service::new(ServiceConfig::default());
        let mut bad = jacobi_spec(1);
        bad.backend = BackendSpec::Flexible {
            m: 0,
            partial: true,
        };
        let err = svc.submit(bad).unwrap_err();
        assert_eq!(
            err.to_string(),
            "invalid job spec: flexible m must be >= 1 (got 0)"
        );
        assert_eq!(svc.queued(), 0);
        assert_eq!(svc.drain().doc.rejected, 1);
    }

    #[test]
    fn cancellation_removes_only_the_tenants_jobs() {
        let mut svc = Service::new(ServiceConfig::default());
        svc.submit(jacobi_spec(1)).unwrap();
        svc.submit(jacobi_spec(2)).unwrap();
        svc.submit(jacobi_spec(1)).unwrap();
        assert_eq!(svc.cancel(1).unwrap(), 2);
        assert_eq!(
            svc.cancel(9).unwrap_err().to_string(),
            "nothing queued for tenant 9"
        );
        let out = svc.drain();
        assert_eq!(out.doc.cancelled, 2);
        assert_eq!(out.doc.completed, 1);
        let cancelled: Vec<_> = out
            .jobs
            .iter()
            .filter(|c| c.record.status == "cancelled")
            .collect();
        assert_eq!(cancelled.len(), 2);
        assert_eq!(
            cancelled[0].record.note,
            "job cancelled: tenant 1 cancelled before execution"
        );
        assert!(cancelled.iter().all(|c| c.report.is_none()));
    }

    #[test]
    fn deterministic_mode_is_reproducible_field_for_field() {
        let run = || {
            let mut svc = Service::new(ServiceConfig {
                batch_size: 3,
                mode: ServiceMode::Deterministic { seed: 42 },
                ..ServiceConfig::default()
            });
            for t in 0..8 {
                let mut spec = jacobi_spec(t);
                spec.problem = if t % 2 == 0 {
                    ProblemId::Jacobi
                } else {
                    ProblemId::Logistic
                };
                if t % 2 == 1 {
                    spec.backend = BackendSpec::Cluster {
                        workers: 4,
                        delay: DelaySpec::Jitter { lo: 1, hi: 3 },
                        hold_prob: 0.1,
                        drop_prob: 0.0,
                        policy: ApplyPolicy::AsReceived,
                    };
                }
                svc.submit(spec).unwrap();
            }
            svc.drain()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.doc.batches.len(), b.doc.batches.len());
        for (ba, bb) in a.doc.batches.iter().zip(&b.doc.batches) {
            for (ra, rb) in ba.records.iter().zip(&bb.records) {
                assert_eq!(ra.tenant, rb.tenant, "seeded order is stable");
                assert_eq!(ra.job, rb.job);
                assert_eq!(ra.steps, rb.steps);
                assert_eq!(ra.final_x_hash, rb.final_x_hash, "bitwise stable");
                assert_eq!(ra.submitted_at, rb.submitted_at, "virtual clock");
                assert_eq!(ra.completed_at, rb.completed_at, "virtual clock");
            }
        }
    }

    #[test]
    fn batches_chunk_in_completion_order() {
        let mut svc = Service::new(ServiceConfig {
            batch_size: 3,
            ..ServiceConfig::default()
        });
        for t in 0..7 {
            svc.submit(jacobi_spec(t)).unwrap();
        }
        let out = svc.drain();
        let sizes: Vec<usize> = out.doc.batches.iter().map(|b| b.records.len()).collect();
        assert_eq!(sizes, vec![3, 3, 1]);
        assert_eq!(
            out.doc.batches.iter().map(|b| b.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(out.doc.completed, 7);
        assert!(out.doc.throughput > 0.0);
        // Records across batches align with the jobs vector.
        let streamed: Vec<u64> = out.doc.records().map(|r| r.job).collect();
        let jobs: Vec<u64> = out.jobs.iter().map(|c| c.record.job).collect();
        assert_eq!(streamed, jobs);
    }

    #[test]
    fn free_running_mode_completes_every_job() {
        let mut svc = Service::new(ServiceConfig {
            mode: ServiceMode::FreeRunning { workers: 4 },
            ..ServiceConfig::default()
        });
        for t in 0..12 {
            svc.submit(jacobi_spec(t)).unwrap();
        }
        let out = svc.drain();
        assert_eq!(out.doc.completed, 12);
        assert_eq!(out.doc.workers, 4);
        assert_eq!(out.doc.mode, "free-running");
        let mut tenants: Vec<u64> = out.jobs.iter().map(|c| c.record.tenant).collect();
        tenants.sort_unstable();
        assert_eq!(tenants, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn workspaces_recycle_across_tenants() {
        let mut svc = Service::new(ServiceConfig::default());
        for t in 0..16 {
            svc.submit(jacobi_spec(t)).unwrap();
        }
        let out = svc.drain();
        assert_eq!(out.doc.completed, 16);
        let stats = svc.pool().stats();
        assert_eq!(stats.leases, 16);
        assert_eq!(stats.created, 1, "one workspace serves all 16 tenants");
        assert_eq!(stats.reused, 15);
    }
}
