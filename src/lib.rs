//! # asynciter — facade crate
//!
//! Asynchronous iterations with unbounded delays, out-of-order messages
//! and flexible communication (El-Baz, IPPS 2022), as one workspace
//! behind a single dependency.
//!
//! ## The unified `Session` API
//!
//! Every engine in the workspace executes the *same* iterate sequence —
//! Eq. (1) of the paper — so every run is expressed the same way: build a
//! [`prelude::Session`], pick a [`prelude::Backend`], read a
//! [`prelude::RunReport`]:
//!
//! ```
//! use asynciter::prelude::*;
//!
//! let op = asynciter::opt::linear::JacobiOperator::new(
//!     asynciter::numerics::sparse::tridiagonal(16, 4.0, -1.0),
//!     vec![1.0; 16],
//! ).unwrap();
//!
//! // Deterministic replay of a chaotic out-of-order schedule …
//! let replay = Session::new(&op)
//!     .steps(4_000)
//!     .schedule(ChaoticBounded::new(16, 4, 8, 12, false, 7))
//!     .record(RecordMode::Full)
//!     .backend(Replay)
//!     .run()
//!     .unwrap();
//!
//! // … and the same problem on free-running threads: same report shape.
//! // (A residual target, not a fixed budget: free-running workers may
//! // interleave arbitrarily coarsely, so "enough updates" is not a
//! // well-defined number — "run until converged" is.)
//! let threaded = Session::new(&op)
//!     .steps(5_000_000)
//!     .stopping(StoppingRule::Residual { eps: 1e-10, check_every: 16 })
//!     .backend(SharedMem { threads: 2, ..SharedMem::default() })
//!     .run()
//!     .unwrap();
//!
//! assert!(replay.final_residual < 1e-10);
//! assert!(threaded.final_residual < 1e-10);
//! ```
//!
//! Backends: [`prelude::Replay`], [`prelude::Flexible`] (Definition 3),
//! [`prelude::SharedMem`], [`prelude::Barrier`] (real threads),
//! [`prelude::Sim`] (deterministic discrete-event simulation),
//! [`prelude::Cluster`] (deterministic sharded message passing with
//! out-of-order / lost / duplicated messages and flexible partial
//! exchange — the paper's distributed regime, replayable bit for bit),
//! and [`prelude::ThreadedCluster`] (the same message-passing regime on
//! genuinely concurrent worker threads, whose racy runs still record a
//! trace that replays bit-identically through `Replay`).
//!
//! ## Crates
//!
//! - [`numerics`] — linear algebra, weighted max norms, RNG, statistics.
//! - [`models`] — the formal model: schedules, conditions (a)–(d),
//!   macro-iterations, epochs, Baudet's example.
//! - [`opt`] — operators and problems (prox-gradient, network flow,
//!   obstacle, Bellman–Ford, …).
//! - [`core`] — engines (Definitions 1 and 3), the [`prelude::Session`]
//!   API, contraction theory, stopping rules.
//! - [`runtime`] — multi-threaded shared-memory and message-passing
//!   runtimes.
//! - [`sim`] — deterministic discrete-event simulator (paper Figs. 1–2).
//! - [`report`] — CSV/ASCII-chart output used by the experiment binaries.
//! - [`conformance`] — the conformance fuzzer: seeded admissible-schedule
//!   generation, shrinking, and differential cross-backend oracles.
//! - [`mc`] — the bounded exhaustive model checker: every admissible
//!   interleaving of a small cluster scope, verified (not sampled), with
//!   shrinker-integrated counterexamples.
//! - [`service`] — the multi-tenant solver service: bounded admission
//!   queue with backpressure, pooled scratch workspaces, thousands of
//!   concurrent per-tenant `Session`s, batched report streaming — with
//!   tenant isolation proven as bit-identity against solo runs.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub use asynciter_conformance as conformance;
pub use asynciter_core as core;
pub use asynciter_mc as mc;
pub use asynciter_models as models;
pub use asynciter_numerics as numerics;
pub use asynciter_opt as opt;
pub use asynciter_report as report;
pub use asynciter_runtime as runtime;
pub use asynciter_service as service;
pub use asynciter_sim as sim;

/// One-stop imports for the unified execution API.
///
/// Brings in the [`Session`](asynciter_core::session::Session) builder,
/// all seven backends, the shared
/// report/control types, and the handful of model types almost every run
/// touches (schedules, partitions, stopping rules, the `Operator` trait).
pub mod prelude {
    pub use asynciter_core::session::{
        macro_count, Backend, Flexible, Problem, RecordMode, Replay, RunControl, RunReport, Session,
    };
    pub use asynciter_core::stopping::StoppingRule;
    pub use asynciter_core::CoreError;
    pub use asynciter_models::partition::Partition;
    pub use asynciter_models::schedule::{
        BlockRoundRobin, ChaoticBounded, CyclicCoordinate, HeavyTailDelay, RecordedSchedule,
        ScheduleGen, SyncJacobi, UnboundedSqrtDelay,
    };
    pub use asynciter_models::trace::{LabelStore, Trace};
    pub use asynciter_numerics::norm::WeightedMaxNorm;
    pub use asynciter_opt::traits::Operator;
    pub use asynciter_runtime::session::{Barrier, Cluster, SharedMem, ThreadedCluster};
    pub use asynciter_runtime::{ApplyPolicy, LinkModel, SnapshotMode};
    pub use asynciter_sim::runner::SimConfig;
    pub use asynciter_sim::session::Sim;
}
