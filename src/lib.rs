//! # asynciter — facade crate
//!
//! Re-exports the full `asynciter` workspace behind a single dependency.
//! See the workspace README for the architecture overview and the crate
//! docs of each member for details:
//!
//! - [`numerics`] — linear algebra, weighted max norms, RNG, statistics.
//! - [`models`] — the formal model: schedules, conditions (a)–(d),
//!   macro-iterations, epochs, Baudet's example.
//! - [`opt`] — operators and problems (prox-gradient, network flow,
//!   obstacle, Bellman–Ford, …).
//! - [`core`] — asynchronous iteration engines (Definitions 1 and 3),
//!   contraction theory, stopping rules.
//! - [`runtime`] — multi-threaded shared-memory and message-passing
//!   runtimes.
//! - [`sim`] — deterministic discrete-event simulator (paper Figs. 1–2).
//! - [`report`] — CSV/ASCII-chart output used by the experiment binaries.

pub use asynciter_core as core;
pub use asynciter_models as models;
pub use asynciter_numerics as numerics;
pub use asynciter_opt as opt;
pub use asynciter_report as report;
pub use asynciter_runtime as runtime;
pub use asynciter_sim as sim;
