//! Application-level integration: the paper's surveyed domains running
//! on the workspace engines — through the unified `Session` API wherever
//! a backend exists — checked against independent references.

use asynciter::opt::bellman_ford::{BellmanFordOperator, Graph};
use asynciter::opt::network_flow::{NetworkFlowProblem, PriceRelaxation};
use asynciter::opt::newton::DiagNewton;
use asynciter::opt::obstacle::{ObstacleProblem, ProjectedJacobi};
use asynciter::prelude::*;
use asynciter::runtime::network::{ApplyPolicy, NetConfig, NetworkRunner};
use asynciter::sim::compute::{ComputeModel, LatencyModel};

/// Network flow: the asynchronous dual relaxation recovers the exact
/// optimal flows under severe delays.
#[test]
fn network_flow_async_matches_exact_dual() {
    let problem = NetworkFlowProblem::random(20, 28, 77).unwrap();
    let exact = problem.exact_prices(0).unwrap();
    let op = PriceRelaxation::new(problem.clone(), 0).unwrap();
    let n = problem.num_nodes();

    let run = Session::new(&op)
        .steps(200_000)
        .schedule(ChaoticBounded::new(n, n / 4, n / 2, 24, false, 8))
        .backend(Replay)
        .run()
        .unwrap();
    assert!(problem.balance_residual(&run.final_x) < 1e-8);
    let f_async = problem.flows(&run.final_x);
    let f_exact = problem.flows(&exact);
    assert!(asynciter::numerics::vecops::max_abs_diff(&f_async, &f_exact) < 1e-7);
}

/// Obstacle problem: asynchronous projected relaxation solves the LCP.
#[test]
fn obstacle_async_solves_lcp() {
    let problem = ObstacleProblem::bump(16, 16, 0.55).unwrap();
    let reference = problem.reference_solution(1e-12, 200_000).unwrap();
    let n = problem.dim();
    let op = ProjectedJacobi::new(problem);

    let run = Session::new(&op)
        .steps(20_000_000)
        .schedule(ChaoticBounded::new(n, n / 8, n / 2, 16, false, 12))
        .x0(op.upper_start())
        .xstar(reference)
        .stopping(StoppingRule::ErrorBelow {
            eps: 1e-9,
            check_every: n as u64,
        })
        .backend(Replay)
        .run()
        .unwrap();
    assert!(run.stopped_early);
    let (feas, resid, comp) = op.problem().complementarity_residuals(&run.final_x);
    assert!(feas < 1e-8 && resid < 1e-4 && comp < 1e-4);
}

/// Bellman–Ford over the simulator backend: heterogeneous processors
/// with heavy-tailed compute times and jittered links still route
/// exactly.
#[test]
fn bellman_ford_on_simulator_routes_exactly() {
    let graph = Graph::arpanet();
    let n = graph.num_nodes();
    let op = BellmanFordOperator::new(graph, 0).unwrap();
    let exact = op.exact();

    let mut cfg = SimConfig::uniform(Partition::blocks(n, 6).unwrap(), 1);
    cfg.compute = vec![
        ComputeModel::Fixed { ticks: 1 },
        ComputeModel::Uniform { lo: 1, hi: 4 },
        ComputeModel::HeavyTail {
            scale: 1,
            alpha: 1.4,
        },
        ComputeModel::Fixed { ticks: 2 },
        ComputeModel::Uniform { lo: 2, hi: 6 },
        ComputeModel::Baudet { scale: 1 },
    ];
    cfg.latency = LatencyModel::Jitter { lo: 0, hi: 9 };
    cfg.seed = 3;
    let run = Session::new(&op)
        .x0(op.initial_estimate())
        .steps(4_000)
        .backend(Sim(cfg))
        .run()
        .unwrap();
    for (i, (got, want)) in run.final_x.iter().zip(&exact).enumerate() {
        assert!((got - want).abs() < 1e-9, "node {i}");
    }
    assert!(run.sim_time.is_some());
}

/// Message-passing Bellman–Ford under the nastiest channel settings the
/// runner supports.
#[test]
fn bellman_ford_message_passing_hostile_channel() {
    let graph = Graph::random_geometric(30, 0.3, 17).unwrap();
    let n = graph.num_nodes();
    let op = BellmanFordOperator::new(graph, 5).unwrap();
    let exact = op.exact();
    let partition = Partition::blocks(n, 5).unwrap();
    let cfg = NetConfig::new(5, 600)
        .with_faults(0.5, 0.3, 0.2)
        .with_policy(ApplyPolicy::AsReceived)
        .with_seed(23);
    let res = NetworkRunner::run(&op, &op.initial_estimate(), &partition, &cfg).unwrap();
    for (i, (got, want)) in res.consensus.iter().zip(&exact).enumerate() {
        assert!((got - want).abs() < 1e-9, "node {i}");
    }
}

/// Modified Newton under asynchronous delays agrees with the gradient
/// operator's fixed point and gets there faster on ill-conditioned
/// problems.
#[test]
fn newton_and_gradient_share_fixed_point_async() {
    use asynciter::opt::proxgrad::{gamma_max, GradientOperator};
    use asynciter::opt::quadratic::SeparableQuadratic;
    let n = 24;
    let f = SeparableQuadratic::random(n, 1.0, 64.0, 13).unwrap();
    let xstar = f.minimizer();
    let newton = DiagNewton::at_reference(f.clone(), &vec![0.0; n], 0.9).unwrap();
    let grad = GradientOperator::new(f, gamma_max(1.0, 64.0)).unwrap();

    let run_steps = |op: &dyn Operator, steps: u64, seed: u64| {
        Session::new(op)
            .steps(steps)
            .schedule(ChaoticBounded::new(n, n / 4, n / 2, 12, false, seed))
            .backend(Replay)
            .run()
            .unwrap()
            .final_x
    };
    let xn = run_steps(&newton, 4_000, 3);
    let xg = run_steps(&grad, 80_000, 3);
    assert!(
        asynciter::numerics::vecops::max_abs_diff(&xn, &xstar) < 1e-9,
        "newton"
    );
    assert!(
        asynciter::numerics::vecops::max_abs_diff(&xg, &xstar) < 1e-6,
        "gradient"
    );
}

/// The simulator and the analytic Baudet construction agree on the
/// delay-growth exponent (two independent implementations of §II).
#[test]
fn baudet_simulator_and_analytic_agree() {
    use asynciter::models::analysis::delay_growth_exponent;
    use asynciter::models::baudet::{baudet_trace, p1_read_delays};
    use asynciter::sim::scenario;

    let analytic = baudet_trace(60_000);
    let (_, p_analytic, _) = delay_growth_exponent(&p1_read_delays(&analytic), 1024).unwrap();

    let op = scenario::two_component_operator();
    let sim = Session::new(&op)
        .x0(vec![0.0, 0.0])
        .steps(60_000)
        .record(RecordMode::Full)
        .backend(Sim(scenario::baudet(60_000)))
        .run()
        .unwrap();
    let trace = sim.trace.expect("trace recorded");
    let series: Vec<(u64, u64)> = asynciter::models::analysis::delay_series(&trace, 1)
        .unwrap()
        .into_iter()
        .zip(trace.iter())
        .filter(|(_, (_, s))| s.active.as_slice() == [0])
        .map(|(d, _)| d)
        .collect();
    let (_, p_sim, _) = delay_growth_exponent(&series, 1024).unwrap();

    assert!((p_analytic - 0.5).abs() < 0.1, "analytic {p_analytic}");
    assert!((p_sim - 0.5).abs() < 0.12, "simulated {p_sim}");
    assert!((p_analytic - p_sim).abs() < 0.1, "implementations disagree");
}

/// Sparse (ℓ₁-regularised) logistic regression — the full §V machine-
/// learning composite `f + g` with a coupled non-quadratic `f` — solved
/// by the asynchronous forward–backward operator under out-of-order
/// delays, validated against its own KKT conditions.
#[test]
fn sparse_logistic_async_forward_backward() {
    use asynciter::opt::logistic::LogisticRegression;
    use asynciter::opt::prox::L1;
    use asynciter::opt::proxgrad::ForwardBackward;
    use asynciter::opt::traits::SmoothObjective;

    let n = 16;
    let model = LogisticRegression::random(n, 300, 2.0, 0.05, 99).unwrap();
    // Strong enough to zero out the weakest coordinates while the class
    // separation keeps accuracy high.
    let lambda = 0.2;
    let gamma = 1.0 / model.lipschitz();
    let op = ForwardBackward::new(model.clone(), L1::new(lambda), gamma).unwrap();

    let run = Session::new(&op)
        .steps(60_000)
        .schedule(ChaoticBounded::new(n, n / 4, n / 2, 16, false, 7))
        .backend(Replay)
        .run()
        .unwrap();
    let x = &run.final_x;
    // KKT of min f + λ‖·‖₁ at the fixed point of FB.
    let mut grad = vec![0.0; n];
    model.grad(x, &mut grad);
    for i in 0..n {
        if x[i] > 1e-9 {
            assert!((grad[i] + lambda).abs() < 1e-6, "i={i}: {}", grad[i]);
        } else if x[i] < -1e-9 {
            assert!((grad[i] - lambda).abs() < 1e-6, "i={i}: {}", grad[i]);
        } else {
            assert!(grad[i].abs() <= lambda + 1e-6, "i={i}: {}", grad[i]);
        }
    }
    // The regulariser actually sparsifies relative to the ridge-only
    // reference.
    let nnz = x.iter().filter(|v| v.abs() > 1e-8).count();
    assert!(nnz < n, "L1 should zero out some coordinates (nnz = {nnz})");
    // And the model still classifies well.
    assert!(model.accuracy(x) > 0.85, "accuracy {}", model.accuracy(x));
}

/// Archived-trace workflow: record a threaded run, serialise the trace,
/// read it back, and deterministically replay it.
#[test]
fn archive_and_replay_threaded_trace() {
    use asynciter::models::trace_io::{trace_from_str, trace_to_string};
    use asynciter::opt::linear::JacobiOperator;

    let n = 16;
    let op = JacobiOperator::new(
        asynciter::numerics::sparse::tridiagonal(n, 4.0, -1.0),
        vec![1.0; n],
    )
    .unwrap();
    let xstar = op.solve_dense_spd().unwrap();
    // Record until the run actually converged: the schedule then provably
    // contains enough macro-iteration structure for the replay to
    // converge too, regardless of how coarsely the OS interleaves the
    // workers (on a single-core host a fixed small budget can be spent
    // almost entirely by one worker).
    let run = Session::new(&op)
        .steps(500_000)
        .stopping(StoppingRule::Residual {
            eps: 1e-13,
            check_every: 32,
        })
        .record(RecordMode::Full)
        .backend(SharedMem {
            threads: 4,
            spin: vec![300; 4],
            ..SharedMem::default()
        })
        .run()
        .unwrap();
    let trace = run.trace.unwrap();

    let archived = trace_to_string(&trace).unwrap();
    let restored = trace_from_str(&archived).unwrap();
    let steps = restored.len() as u64;
    let rep = Session::new(&op)
        .steps(steps)
        .schedule(RecordedSchedule::new(restored).unwrap())
        .xstar(xstar.clone())
        .backend(Replay)
        .run()
        .unwrap();
    let err = rep.final_error(&xstar);
    assert!(
        err < 1e-5,
        "replayed archived schedule did not converge: {err}"
    );
}
