//! Hot-path allocation audit: the per-step evaluation paths of the
//! workhorse operators — `SparseProxGrad` (lasso), `LogisticGradOperator`
//! and `PriceRelaxation` (network flow) — must perform **zero** heap
//! allocations once the caller-owned buffers exist. This is the
//! executable form of the scratch-buffer contract every engine relies on
//! (engines allocate `vec![0.0; op.scratch_len()]` once per run/worker
//! and drive millions of steps through `update_active_with` /
//! `apply_with` / `residual_inf_with`).
//!
//! The audit swaps in a counting global allocator and runs everything in
//! ONE `#[test]` so no parallel test thread can pollute the counter.

use asynciter::opt::lasso::LassoProblem;
use asynciter::opt::logistic::LogisticGradOperator;
use asynciter::opt::network_flow::{NetworkFlowProblem, PriceRelaxation};
use asynciter::opt::prox::L1;
use asynciter::opt::proxgrad::{gamma_max, SparseProxGrad};
use asynciter::opt::traits::{Operator, SmoothObjective};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

// Thread-local counting: only the audit thread's allocations count, so
// the test-harness machinery (timers, output capture, sibling threads)
// cannot pollute the audit. Const-initialised thread locals never
// allocate on first touch; `try_with` guards TLS teardown.
thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn note_alloc() {
    let _ = COUNTING.try_with(|c| {
        if c.get() {
            let _ = ALLOCS.try_with(|a| a.set(a.get() + 1));
        }
    });
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_alloc();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `f` with allocation counting enabled on this thread and returns
/// the number of heap allocations (allocs + reallocs) it performed.
fn count_allocs(f: impl FnOnce()) -> u64 {
    ALLOCS.with(|a| a.set(0));
    COUNTING.with(|c| c.set(true));
    f();
    COUNTING.with(|c| c.set(false));
    ALLOCS.with(|a| a.get())
}

/// Drives `steps` rounds of the scratch evaluation paths over
/// preallocated buffers and returns the allocation count — the quantity
/// the audit pins to zero.
fn audit_operator(op: &dyn Operator, steps: usize) -> u64 {
    let n = op.dim();
    let mut x = vec![0.1; n];
    let mut out = vec![0.0; n];
    let mut scratch = vec![0.0; op.scratch_len()];
    let active: Vec<usize> = (0..n).step_by(2).collect();
    // Warm-up outside the counted section (nothing should lazily
    // allocate, but the audit should fail only on *steady-state* allocs).
    op.apply_with(&x, &mut out, &mut scratch);
    count_allocs(|| {
        for s in 0..steps {
            op.update_active_with(&x, &active, &mut out, &mut scratch);
            op.apply_with(&x, &mut out, &mut scratch);
            let r = op.residual_inf_with(&x, &mut scratch);
            let c = op.component(s % n, &x);
            // Keep the optimiser honest and the iterate bounded.
            x[s % n] = 0.5 * (c + r.min(1.0));
        }
    })
}

#[test]
fn per_step_paths_allocate_nothing() {
    // Lasso via the sparse prox-gradient operator.
    let lasso = LassoProblem::random(12, 72, 3, 0.05, 0.01, 7).unwrap();
    let q = lasso.quadratic.clone();
    let gamma = 0.9 * gamma_max(q.strong_convexity(), q.lipschitz());
    let sparse = SparseProxGrad::new(q, L1::new(lasso.lambda), gamma).unwrap();

    // Logistic regression via the certified gradient operator (dense
    // data coupling: the scratch holds the per-sample weights).
    let logistic = LogisticGradOperator::certified_random(8, 48, 2.0, 3).unwrap();
    assert!(logistic.scratch_len() > 0, "logistic shares sample weights");

    // Network flow via the hub-grounded price relaxation.
    let flow = PriceRelaxation::new(NetworkFlowProblem::wheel(12, 5).unwrap(), 0).unwrap();

    for (name, op) in [
        ("sparse-proxgrad", &sparse as &dyn Operator),
        ("logistic-grad", &logistic),
        ("price-relaxation", &flow),
    ] {
        let allocs = audit_operator(op, 500);
        assert_eq!(
            allocs, 0,
            "{name}: {allocs} heap allocations in 500 audited steps"
        );
    }
}

#[test]
fn pool_leases_keep_per_step_loops_alloc_free_across_tenants() {
    // The service layer's extension of the scratch contract: a warmed
    // `ScratchPool` must hand out workspaces with ZERO heap activity,
    // so back-to-back tenant jobs on a worker run their per-step loops
    // allocation-free end to end — lease, stage, iterate, return.
    use asynciter::runtime::scratch::ScratchPool;

    let logistic = LogisticGradOperator::certified_random(8, 48, 2.0, 3).unwrap();
    let n = logistic.dim();
    // The service workspace layout: [x0 staging | operator scratch].
    let len = n + logistic.scratch_len();
    let pool = ScratchPool::new();
    pool.warm(1, len);
    let x0 = vec![0.1; n];
    let mut out = vec![0.0; n];
    let allocs = count_allocs(|| {
        for _tenant in 0..64 {
            let mut ws = pool.lease(len);
            let (stage, scratch) = ws.split_at_mut(n);
            stage.copy_from_slice(&x0);
            for _ in 0..50 {
                logistic.apply_with(stage, &mut out, scratch);
                let _ = logistic.residual_inf_with(stage, scratch);
            }
        }
    });
    assert_eq!(
        allocs, 0,
        "{allocs} heap allocations across 64 pooled tenant loops"
    );
    let stats = pool.stats();
    assert_eq!(stats.leases, 64);
    assert_eq!(stats.created, 1, "the warmed buffer serves every tenant");
    assert_eq!(stats.reused, 64, "every lease recycled the warmed buffer");
}
