//! Tier-1 multi-tenant service suite: the differential
//! tenant-equivalence tests, the scratch-leak negative control and its
//! committed fixture lock, backpressure/cancellation/malformed-spec
//! error paths with pinned messages, CLI exit codes, and the committed
//! baseline lock.
//!
//! The load-bearing property: **tenant isolation is bit-identity**.
//! Every per-tenant report out of a service run — whatever the
//! admission order, pooling, or worker interleaving — must be bitwise
//! equal to a solo run of the same spec. The sweeps here prove it
//! differentially (every job re-run solo, diffed bit for bit) for
//! N ∈ {2, 8, 64} in both modes and for a 1000-tenant soak; the planted
//! dirty-lease bug proves the oracle has teeth.

use asynciter::conformance::corpus::load_trace;
use asynciter::conformance::service::{inject_scratch_leak_demo, tenant_equivalence, tenant_plan};
use asynciter::service::{
    BackendSpec, JobSpec, ProblemId, ScheduleSpec, Service, ServiceConfig, ServiceMode,
};
use asynciter_bench::service_cli::service_main;
use std::path::{Path, PathBuf};

const CORPUS_DIR: &str = "tests/corpus";

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "asynciter-service-tier1-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

// ---------------------------------------------------------------------------
// The differential tenant-equivalence property
// ---------------------------------------------------------------------------

#[test]
fn tenant_isolation_is_bit_identical_for_2_8_and_64_tenants() {
    for tenants in [2u64, 8, 64] {
        let sweep = tenant_equivalence(
            tenants,
            0x1502,
            ServiceMode::Deterministic { seed: 0xD0 },
            false,
        )
        .unwrap();
        assert_eq!(sweep.outcome.doc.completed, tenants, "{tenants} tenants");
        assert_eq!(sweep.outcome.doc.failed, 0);
        assert!(
            sweep.divergences.is_empty(),
            "{tenants} tenants: {:?}",
            sweep.divergences
        );
    }
}

#[test]
fn free_running_workers_uphold_the_same_contract() {
    let sweep =
        tenant_equivalence(8, 0x1502, ServiceMode::FreeRunning { workers: 3 }, false).unwrap();
    assert_eq!(sweep.outcome.doc.completed, 8);
    assert!(sweep.divergences.is_empty(), "{:?}", sweep.divergences);
}

#[test]
fn thousand_tenant_soak_streams_batches_with_zero_divergences() {
    // The full verified soak (every job re-run solo) runs in release in
    // the nightly workflow; the tier-1 soak still drains 1000 genuinely
    // concurrent tenant sessions and verifies isolation differentially
    // against a deterministic drain of the same plan — every payload
    // field of every record, bit for bit.
    let free = tenant_equivalence(1000, 0x50AC, ServiceMode::FreeRunning { workers: 4 }, false)
        .unwrap()
        .outcome;
    assert_eq!(free.doc.completed, 1000);
    assert_eq!(free.doc.failed, 0);
    assert_eq!(free.doc.batches.len(), 16, "1000 records in 64-job batches");
    assert!(free.doc.throughput > 0.0);

    let mut svc = Service::new(ServiceConfig {
        queue_capacity: 1000,
        mode: ServiceMode::Deterministic { seed: 7 },
        ..ServiceConfig::default()
    });
    for spec in tenant_plan(1000, 0x50AC, false) {
        svc.submit(spec).unwrap();
    }
    let det = svc.drain();
    let key = |c: &asynciter::service::CompletedJob| (c.record.tenant, c.record.job);
    let mut free_jobs: Vec<_> = free.jobs.iter().collect();
    free_jobs.sort_by_key(|c| key(c));
    let mut det_jobs: Vec<_> = det.jobs.iter().collect();
    det_jobs.sort_by_key(|c| key(c));
    assert_eq!(free_jobs.len(), det_jobs.len());
    for (f, d) in free_jobs.iter().zip(&det_jobs) {
        assert_eq!(key(f), key(d));
        assert_eq!(f.record.status, d.record.status);
        assert_eq!(f.record.steps, d.record.steps);
        assert_eq!(
            f.record.final_x_hash, d.record.final_x_hash,
            "tenant {}",
            f.record.tenant
        );
        assert_eq!(
            f.record.final_residual.to_bits(),
            d.record.final_residual.to_bits()
        );
        assert_eq!(f.record.stopped_early, d.record.stopped_early);
    }
}

// ---------------------------------------------------------------------------
// The negative control and its committed fixture
// ---------------------------------------------------------------------------

#[test]
fn planted_scratch_leak_is_caught_and_fixture_reproduces_byte_for_byte() {
    // 0xA5A5 is the conformance CLI's default seed: the committed
    // fixture is exactly `conformance --inject-scratch-leak`'s output.
    let dir = tmp_dir("leak-fixture");
    let fresh = dir.join("service-scratch-leak.trace");
    let (orig, shrunk) = inject_scratch_leak_demo(0xA5A5, &fresh).unwrap();
    assert!(shrunk >= 1 && shrunk <= orig);
    let committed = Path::new(CORPUS_DIR).join("service-scratch-leak.trace");
    assert_eq!(
        std::fs::read_to_string(&committed).unwrap(),
        std::fs::read_to_string(&fresh).unwrap(),
        "demo output drifted from the committed fixture"
    );
    // And the fixture is a well-formed, replayable trace.
    let trace = load_trace(&committed).unwrap();
    assert_eq!(trace.len() as u64, shrunk);
    assert_eq!(trace.n(), 16, "jacobi dimension");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Backpressure, cancellation, malformed specs: pinned messages
// ---------------------------------------------------------------------------

fn jacobi_spec(tenant: u64) -> JobSpec {
    JobSpec {
        tenant,
        seed: tenant,
        problem: ProblemId::Jacobi,
        backend: BackendSpec::Replay {
            schedule: ScheduleSpec::Sync,
        },
        record: false,
    }
}

#[test]
fn backpressure_cancellation_and_malformed_specs_pin_their_messages() {
    let mut svc = Service::new(ServiceConfig {
        queue_capacity: 2,
        ..ServiceConfig::default()
    });
    svc.submit(jacobi_spec(0)).unwrap();
    svc.submit(jacobi_spec(1)).unwrap();
    let err = svc.submit(jacobi_spec(2)).unwrap_err();
    assert_eq!(
        err.to_string(),
        "queue full: capacity 2 reached, job rejected (backpressure)"
    );

    let err = svc.cancel(9).unwrap_err();
    assert_eq!(err.to_string(), "nothing queued for tenant 9");
    assert_eq!(svc.cancel(1).unwrap(), 1);

    let mut bad = jacobi_spec(3);
    bad.backend = BackendSpec::Replay {
        schedule: ScheduleSpec::Chaotic {
            k_min: 0,
            k_max: 4,
            b: 2,
        },
    };
    let err = svc.submit(bad).unwrap_err();
    assert_eq!(
        err.to_string(),
        "invalid job spec: chaotic schedule needs 1 <= k_min <= k_max <= n=16 \
         (got k_min 0, k_max 4)"
    );

    let outcome = svc.drain();
    assert_eq!(outcome.doc.completed, 1);
    assert_eq!(outcome.doc.cancelled, 1);
    assert_eq!(outcome.doc.rejected, 2, "queue-full + invalid spec");
    let cancelled = outcome
        .jobs
        .iter()
        .find(|c| c.record.status == "cancelled")
        .expect("cancelled record streams");
    assert_eq!(
        cancelled.record.note,
        "job cancelled: tenant 1 cancelled before execution"
    );
}

// ---------------------------------------------------------------------------
// CLI exit codes and the committed baseline lock
// ---------------------------------------------------------------------------

#[test]
fn service_cli_matches_the_committed_baseline_with_pinned_exit_codes() {
    let dir = tmp_dir("cli");
    let out = dir.join("BENCH_service.json");
    // The committed baseline was produced by this exact invocation (in
    // release mode); deterministic fields must match bit for bit. The
    // huge min-wall floor disables the timing gates — debug-mode test
    // runs are not timing measurements.
    let code = service_main(&[
        "--tenants".into(),
        "64".into(),
        "--out".into(),
        out.display().to_string(),
        "--check".into(),
        "baselines/service-baseline.json".into(),
        "--min-wall-secs".into(),
        "1e9".into(),
    ]);
    assert_eq!(code, 0, "baseline drifted");
    // The artefact is machine-readable and carries every record.
    let doc = asynciter::report::stream::ServiceDoc::parse(&std::fs::read_to_string(&out).unwrap())
        .unwrap();
    assert_eq!(doc.records().count(), 64);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn service_cli_exit_codes_are_pinned() {
    let dir = tmp_dir("cli-codes");
    // Usage errors: 2.
    assert_eq!(service_main(&["--bogus".into()]), 2);
    // Unreadable baseline: 2.
    assert_eq!(
        service_main(&[
            "--tenants".into(),
            "2".into(),
            "--out".into(),
            dir.join("a.json").display().to_string(),
            "--check".into(),
            dir.join("missing.json").display().to_string(),
        ]),
        2
    );
    // The planted leak under --verify: 1, with the shrunk exhibit.
    assert_eq!(
        service_main(&[
            "--tenants".into(),
            "6".into(),
            "--inject-scratch-leak".into(),
            "--record".into(),
            "--verify".into(),
            "--out".into(),
            dir.join("b.json").display().to_string(),
            "--fault-dir".into(),
            dir.display().to_string(),
        ]),
        1
    );
    let exhibit = dir.join("service-divergence.trace");
    let trace = load_trace(&exhibit).expect("divergence shrunk and persisted");
    assert!(!trace.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}
