//! Tier-1 model-checker suite: fixture locks, exploration determinism,
//! and scope verdicts, run on every `cargo test`.
//!
//! The sweeps here are the *real* exhaustive explorations of the small
//! scopes (thousands of canonical states), not samples — cheap enough
//! for the always-on tier. The committed `mc-*.trace` fixtures are the
//! deterministic outputs of the demo generators; these tests prove the
//! generators still produce them byte for byte, that DFS and BFS agree
//! on the explored graph, and that the reorder scope rediscovers the
//! out-of-order violation class of `fault-cluster-reorder.trace`.

use asynciter::conformance::cluster::has_label_regression;
use asynciter::conformance::corpus::load_trace;
use asynciter::core::session::Session;
use asynciter::mc::counterexample::envelope_violation;
use asynciter::mc::explore::{explore_check_por, rebuild};
use asynciter::mc::{
    explore, find_reorder_demo, inject_bug_demo, seam_bug_demo, seam_explore, seam_rebuild,
    state_hash, McProblem, McState, Por, Property, Scope, SeamBug, SeamScope, Strategy,
};
use asynciter::runtime::{Cluster, ThreadedCluster};
use std::path::Path;

const CORPUS_DIR: &str = "tests/corpus";

/// Re-runs a demo generator into a temp dir and returns the fresh bytes.
fn regenerate(name: &str, demo: fn(&Path) -> Result<(u64, u64), String>) -> String {
    let dir = std::env::temp_dir().join(format!("asynciter-mc-tier1-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    let out = dir.join(name);
    demo(&out).unwrap_or_else(|e| panic!("{name}: demo failed: {e}"));
    let bytes = std::fs::read_to_string(&out).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    bytes
}

#[test]
fn mc_fixtures_reproduce_from_the_demos_bit_for_bit() {
    for (name, demo) in [
        (
            "mc-bug-severed-apply.trace",
            inject_bug_demo as fn(&Path) -> Result<(u64, u64), String>,
        ),
        ("mc-reorder.trace", find_reorder_demo),
    ] {
        let committed = std::fs::read_to_string(Path::new(CORPUS_DIR).join(name))
            .unwrap_or_else(|e| panic!("{name}: committed fixture missing: {e}"));
        let fresh = regenerate(name, demo);
        assert_eq!(
            committed, fresh,
            "{name}: demo output drifted from the committed fixture"
        );
    }
}

#[test]
fn mc_bug_fixture_carries_the_envelope_violation_signature() {
    let trace = load_trace(&Path::new(CORPUS_DIR).join("mc-bug-severed-apply.trace")).unwrap();
    assert!(
        envelope_violation(&trace, Scope::inject().envelope),
        "severed-apply fixture lost its frozen-label signature"
    );
    assert!(
        !has_label_regression(&trace, Scope::inject().workers),
        "severed-apply fixture is a freeze, not a regression"
    );
}

#[test]
fn mc_reorder_fixture_is_the_fault_cluster_reorder_class() {
    // The same trace-level signature that defines the committed
    // `fault-cluster-reorder.trace` fuzzer find: a component's label
    // regressing between one worker's consecutive turns.
    let trace = load_trace(&Path::new(CORPUS_DIR).join("mc-reorder.trace")).unwrap();
    assert!(
        has_label_regression(&trace, Scope::reorder().workers),
        "reorder fixture lost the label regression"
    );
}

#[test]
fn state_hash_locks_the_canonical_encoding() {
    // Known-value lock on the 128-bit FNV over the canonical byte
    // encoding: any change to field order, endianness, or the encoding
    // itself shows up here before it silently invalidates dedup.
    let problem = McProblem::build();
    let quick = state_hash(&McState::initial(&Scope::quick(), &problem));
    assert_eq!(
        quick, 0xc12df9481a04f9685f8430cf8eebbb4e,
        "quick-scope root hash drifted"
    );
    // Every dynamic field participates in the hash: read history …
    let mut with_history = McState::initial(&Scope::quick(), &problem);
    with_history.prev_read[0] = vec![1; 16];
    let with_history = state_hash(&with_history);
    assert_ne!(quick, with_history, "read-history must be hashed");
    // … and the step counter.
    let mut stepped = McState::initial(&Scope::quick(), &problem);
    stepped.next_step = 2;
    assert_ne!(quick, state_hash(&stepped), "step counter must be hashed");
    // Determinism: same state, same hash.
    assert_eq!(
        quick,
        state_hash(&McState::initial(&Scope::quick(), &problem))
    );
}

#[test]
fn exploration_is_deterministic_and_strategy_invariant() {
    let scope = Scope::quick();
    let problem = McProblem::build();
    let a = explore(&scope, &problem, Strategy::Dfs, u64::MAX, false, Por::Off);
    let b = explore(&scope, &problem, Strategy::Dfs, u64::MAX, false, Por::Off);
    assert_eq!(a.stats, b.stats, "same scope, same search, same counters");
    // BFS explores the identical state graph; only the frontier shape
    // (and hence its high-water mark) may differ.
    let c = explore(&scope, &problem, Strategy::Bfs, u64::MAX, false, Por::Off);
    assert_eq!(a.stats.visited, c.stats.visited, "DFS/BFS visited differ");
    assert_eq!(a.stats.dedup_hits, c.stats.dedup_hits);
    assert_eq!(a.stats.edges, c.stats.edges);
    assert_eq!(a.stats.terminals, c.stats.terminals);
    assert_eq!(a.stats.pruned_capacity, c.stats.pruned_capacity);
    assert_eq!(a.stats.pruned_inadmissible, c.stats.pruned_inadmissible);
    assert!(a.violation.is_none() && c.violation.is_none());
}

#[test]
fn quick_and_flex_scopes_verify_exhaustively() {
    let problem = McProblem::build();
    for (scope, expect_visited) in [(Scope::quick(), 4054u64), (Scope::flex(), 5044u64)] {
        let out = explore(&scope, &problem, Strategy::Dfs, u64::MAX, false, Por::Off);
        assert!(!out.truncated, "{}: sweep truncated", scope.name);
        assert!(
            out.violation.is_none(),
            "{}: unexpected violation: {:?}",
            scope.name,
            out.violation
        );
        assert_eq!(
            out.stats.visited, expect_visited,
            "{}: explored state count drifted — transition relation changed",
            scope.name
        );
    }
}

#[test]
fn reorder_scope_rediscovers_the_out_of_order_class() {
    let scope = Scope::reorder();
    let problem = McProblem::build();
    let out = explore(&scope, &problem, Strategy::Dfs, u64::MAX, true, Por::Off);
    let found = out
        .violation
        .expect("reorder probe found nothing — channel model lost out-of-order delivery");
    assert_eq!(found.violation.property, Property::Reorder);
    let (trace, _) = rebuild(&scope, &problem, &found.path, found.por);
    assert!(
        has_label_regression(&trace, scope.workers),
        "rebuilt witness lost the regression"
    );
}

#[test]
fn por_agrees_with_full_exploration_on_every_quick_scope() {
    // The partial-order reduction contract, locked as a tier-1 gate:
    // on every quick scope, reduced and unreduced exploration reach the
    // same verdict (and the same violation class when one exists), and
    // DFS and BFS agree under reduction exactly as they do without it.
    let problem = McProblem::build();
    let mut inject = Scope::inject();
    inject.inject_bug = true;
    for scope in [Scope::quick(), Scope::flex(), Scope::reorder(), inject] {
        for strategy in [Strategy::Dfs, Strategy::Bfs] {
            explore_check_por(&scope, &problem, strategy, u64::MAX, false).unwrap_or_else(|e| {
                panic!("{} ({strategy:?}): POR equivalence broken: {e}", scope.name)
            });
        }
        let dfs = explore(&scope, &problem, Strategy::Dfs, u64::MAX, false, Por::On);
        let bfs = explore(&scope, &problem, Strategy::Bfs, u64::MAX, false, Por::On);
        assert_eq!(
            dfs.stats.visited, bfs.stats.visited,
            "{}: reduced DFS/BFS visited differ",
            scope.name
        );
        assert_eq!(dfs.stats.por_pruned_choices, bfs.stats.por_pruned_choices);
    }
}

#[test]
fn por_reduction_counters_lock_the_quick_scope() {
    // Known-value locks on the reduction itself: the quick scope
    // shrinks 4054 → 1122 states, with the prune counters accounting
    // for the difference. Any drift means the reduction rules (or the
    // transition relation under them) changed.
    let problem = McProblem::build();
    let scope = Scope::quick();
    let off = explore(&scope, &problem, Strategy::Dfs, u64::MAX, false, Por::Off);
    let on = explore(&scope, &problem, Strategy::Dfs, u64::MAX, false, Por::On);
    assert!(off.violation.is_none() && on.violation.is_none());
    assert_eq!(off.stats.visited, 4054, "unreduced quick count drifted");
    assert_eq!(on.stats.visited, 1122, "reduced quick count drifted");
    assert_eq!(off.stats.por_pruned_choices, 0, "Por::Off must not prune");
    assert_eq!(
        on.stats.por_pruned_choices, 786,
        "quick-scope POR prune count drifted"
    );
    assert!(
        on.stats.por_pruned_deliveries > 0 && on.stats.por_pruned_sends > 0,
        "both delivery-side and send-side reductions must fire on quick"
    );
}

#[test]
fn seam1_matches_sequential_and_threaded_cluster_bitwise() {
    // The transport-seam model at one worker has a single schedule;
    // exhausting it and matching the sequential cluster bit for bit
    // lifts the `ThreadedCluster{1} ≡ Cluster{1}` conformance test from
    // one sampled run to a bounded-exhaustive statement.
    let scope = SeamScope::seam1();
    let problem = McProblem::build();
    let out = seam_explore(&scope, &problem, u64::MAX);
    assert!(out.violation.is_none(), "{:?}", out.violation);
    assert!(!out.truncated);
    assert_eq!(out.stats.terminals, 1, "seam1 must have a single schedule");
    let (_, terminal) = seam_rebuild(&scope, &problem, &[0, 0, 0, 0]);
    let steps = scope.steps();
    let cluster = Session::new(&problem.op)
        .x0(problem.x0.clone())
        .steps(steps)
        .backend(Cluster {
            workers: 1,
            ..Cluster::default()
        })
        .run()
        .unwrap();
    let threaded = Session::new(&problem.op)
        .x0(problem.x0.clone())
        .steps(steps)
        .backend(ThreadedCluster {
            workers: 1,
            ..ThreadedCluster::default()
        })
        .run()
        .unwrap();
    for c in 0..problem.n() {
        assert_eq!(
            terminal.views[0][c].to_bits(),
            cluster.final_x[c].to_bits(),
            "seam model diverges from Cluster{{1}} at component {c}"
        );
        assert_eq!(
            terminal.views[0][c].to_bits(),
            threaded.final_x[c].to_bits(),
            "seam model diverges from ThreadedCluster{{1}} at component {c}"
        );
    }
}

#[test]
fn tier1_seam_scope_verifies_exhaustively() {
    // A reduced two-worker seam universe cheap enough for every
    // `cargo test`: every interleaving of free-running worker steps ×
    // every FaultEndpoint fate over two rounds. The full `seam2` sweep
    // (163339 states) runs in the nightly `mc-full` job.
    let scope = SeamScope {
        name: "seam-tier1".into(),
        rounds: 2,
        hold_max: 1,
        ..SeamScope::seam2()
    };
    let problem = McProblem::build();
    let out = seam_explore(&scope, &problem, u64::MAX);
    assert!(!out.truncated, "tier-1 seam sweep truncated");
    assert!(out.violation.is_none(), "{:?}", out.violation);
    assert_eq!(
        out.stats.visited, 1245,
        "tier-1 seam state count drifted — seam transition relation changed"
    );
}

#[test]
fn seam_fixtures_reproduce_from_the_demos_bit_for_bit() {
    // Non-capturing closures coerce to fn pointers, so the shared
    // regenerate harness covers the seam demos too.
    for (name, demo) in [
        (
            "mc-seam-hold.trace",
            (|p: &Path| seam_bug_demo(SeamBug::Hold, p)) as fn(&Path) -> Result<(u64, u64), String>,
        ),
        ("mc-seam-drop.trace", |p: &Path| {
            seam_bug_demo(SeamBug::Drop, p)
        }),
        ("mc-seam-dup.trace", |p: &Path| {
            seam_bug_demo(SeamBug::Dup, p)
        }),
    ] {
        let committed = std::fs::read_to_string(Path::new(CORPUS_DIR).join(name))
            .unwrap_or_else(|e| panic!("{name}: committed fixture missing: {e}"));
        let fresh = regenerate(name, demo);
        assert_eq!(
            committed, fresh,
            "{name}: seam demo output drifted from the committed fixture"
        );
    }
}

#[test]
fn seam_fixtures_carry_the_envelope_violation_signature() {
    for bug in [SeamBug::Hold, SeamBug::Drop, SeamBug::Dup] {
        let name = format!("mc-seam-{}.trace", bug.id());
        let trace = load_trace(&Path::new(CORPUS_DIR).join(&name)).unwrap();
        assert!(
            envelope_violation(&trace, SeamScope::seam_bug(bug).envelope),
            "{name}: fixture lost the zeroed-label envelope signature"
        );
    }
}

#[test]
fn from_trace_derives_a_scope_that_rediscovers_the_mc_reorder_class() {
    // The 2-worker derived scope is small enough to hunt in tier-1.
    let trace = load_trace(&Path::new(CORPUS_DIR).join("mc-reorder.trace")).unwrap();
    let scope = Scope::from_trace("mc-reorder", &trace).unwrap();
    assert_eq!(scope.name, "from-mc-reorder");
    assert_eq!(scope.workers, 2);
    assert!(
        scope.track_read_history,
        "regression trace must track reads"
    );
    let problem = McProblem::build();
    let out = explore(&scope, &problem, Strategy::Dfs, u64::MAX, true, Por::Off);
    let found = out
        .violation
        .expect("derived scope lost the mc-reorder violation class");
    assert_eq!(found.violation.property, Property::Reorder);
    let (witness, _) = rebuild(&scope, &problem, &found.path, found.por);
    assert!(has_label_regression(&witness, scope.workers));
}

#[test]
fn from_trace_derives_the_three_worker_fault_cluster_scope() {
    // The 3-worker hunt itself runs in the nightly `mc-full` job
    // (~9 s release); tier-1 locks the derivation: worker recovery from
    // singleton shrunk active sets, the reorder-class envelope floor
    // `2·workers + 1`, and the clamped horizon.
    let trace = load_trace(&Path::new(CORPUS_DIR).join("fault-cluster-reorder.trace")).unwrap();
    let scope = Scope::from_trace("fault-cluster-reorder", &trace).unwrap();
    assert_eq!(scope.name, "from-fault-cluster-reorder");
    assert_eq!(scope.workers, 3, "worker recovery from shrunk active sets");
    assert_eq!(scope.steps, 9, "horizon must clamp to 3 rounds");
    assert_eq!(
        scope.envelope,
        asynciter::models::conditions::DelayEnvelope::Bounded(7),
        "reorder-class envelope floor 2·workers + 1"
    );
    assert!(scope.track_read_history);
    assert_eq!(scope.max_in_flight, 4, "capacity scales with in-degree");
}

#[test]
fn from_trace_rejects_unusable_traces() {
    use asynciter::models::{LabelStore, Trace};
    // Wrong dimension.
    let mut t8 = Trace::new(8, LabelStore::Full);
    t8.push_step(&[0], &[0; 8]);
    assert!(Scope::from_trace("t8", &t8)
        .unwrap_err()
        .contains("dimension"));
    // Right dimension, non-round-robin schedule (same block twice).
    let mut bad = Trace::new(16, LabelStore::Full);
    bad.push_step(&[0], &[0; 16]);
    bad.push_step(&[1], &[1; 16]);
    assert!(Scope::from_trace("bad", &bad)
        .unwrap_err()
        .contains("no round-robin"));
    // Empty.
    let empty = Trace::new(16, LabelStore::Full);
    assert!(Scope::from_trace("empty", &empty)
        .unwrap_err()
        .contains("empty"));
}
