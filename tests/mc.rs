//! Tier-1 model-checker suite: fixture locks, exploration determinism,
//! and scope verdicts, run on every `cargo test`.
//!
//! The sweeps here are the *real* exhaustive explorations of the small
//! scopes (thousands of canonical states), not samples — cheap enough
//! for the always-on tier. The committed `mc-*.trace` fixtures are the
//! deterministic outputs of the demo generators; these tests prove the
//! generators still produce them byte for byte, that DFS and BFS agree
//! on the explored graph, and that the reorder scope rediscovers the
//! out-of-order violation class of `fault-cluster-reorder.trace`.

use asynciter::conformance::cluster::has_label_regression;
use asynciter::conformance::corpus::load_trace;
use asynciter::mc::counterexample::envelope_violation;
use asynciter::mc::explore::rebuild;
use asynciter::mc::{
    explore, find_reorder_demo, inject_bug_demo, state_hash, McProblem, McState, Property, Scope,
    Strategy,
};
use std::path::Path;

const CORPUS_DIR: &str = "tests/corpus";

/// Re-runs a demo generator into a temp dir and returns the fresh bytes.
fn regenerate(name: &str, demo: fn(&Path) -> Result<(u64, u64), String>) -> String {
    let dir = std::env::temp_dir().join(format!("asynciter-mc-tier1-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    let out = dir.join(name);
    demo(&out).unwrap_or_else(|e| panic!("{name}: demo failed: {e}"));
    let bytes = std::fs::read_to_string(&out).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    bytes
}

#[test]
fn mc_fixtures_reproduce_from_the_demos_bit_for_bit() {
    for (name, demo) in [
        (
            "mc-bug-severed-apply.trace",
            inject_bug_demo as fn(&Path) -> Result<(u64, u64), String>,
        ),
        ("mc-reorder.trace", find_reorder_demo),
    ] {
        let committed = std::fs::read_to_string(Path::new(CORPUS_DIR).join(name))
            .unwrap_or_else(|e| panic!("{name}: committed fixture missing: {e}"));
        let fresh = regenerate(name, demo);
        assert_eq!(
            committed, fresh,
            "{name}: demo output drifted from the committed fixture"
        );
    }
}

#[test]
fn mc_bug_fixture_carries_the_envelope_violation_signature() {
    let trace = load_trace(&Path::new(CORPUS_DIR).join("mc-bug-severed-apply.trace")).unwrap();
    assert!(
        envelope_violation(&trace, Scope::inject().envelope),
        "severed-apply fixture lost its frozen-label signature"
    );
    assert!(
        !has_label_regression(&trace, Scope::inject().workers),
        "severed-apply fixture is a freeze, not a regression"
    );
}

#[test]
fn mc_reorder_fixture_is_the_fault_cluster_reorder_class() {
    // The same trace-level signature that defines the committed
    // `fault-cluster-reorder.trace` fuzzer find: a component's label
    // regressing between one worker's consecutive turns.
    let trace = load_trace(&Path::new(CORPUS_DIR).join("mc-reorder.trace")).unwrap();
    assert!(
        has_label_regression(&trace, Scope::reorder().workers),
        "reorder fixture lost the label regression"
    );
}

#[test]
fn state_hash_locks_the_canonical_encoding() {
    // Known-value lock on the 128-bit FNV over the canonical byte
    // encoding: any change to field order, endianness, or the encoding
    // itself shows up here before it silently invalidates dedup.
    let problem = McProblem::build();
    let quick = state_hash(&McState::initial(&Scope::quick(), &problem));
    assert_eq!(
        quick, 0xc12df9481a04f9685f8430cf8eebbb4e,
        "quick-scope root hash drifted"
    );
    // Every dynamic field participates in the hash: read history …
    let mut with_history = McState::initial(&Scope::quick(), &problem);
    with_history.prev_read[0] = vec![1; 16];
    let with_history = state_hash(&with_history);
    assert_ne!(quick, with_history, "read-history must be hashed");
    // … and the step counter.
    let mut stepped = McState::initial(&Scope::quick(), &problem);
    stepped.next_step = 2;
    assert_ne!(quick, state_hash(&stepped), "step counter must be hashed");
    // Determinism: same state, same hash.
    assert_eq!(
        quick,
        state_hash(&McState::initial(&Scope::quick(), &problem))
    );
}

#[test]
fn exploration_is_deterministic_and_strategy_invariant() {
    let scope = Scope::quick();
    let problem = McProblem::build();
    let a = explore(&scope, &problem, Strategy::Dfs, u64::MAX, false);
    let b = explore(&scope, &problem, Strategy::Dfs, u64::MAX, false);
    assert_eq!(a.stats, b.stats, "same scope, same search, same counters");
    // BFS explores the identical state graph; only the frontier shape
    // (and hence its high-water mark) may differ.
    let c = explore(&scope, &problem, Strategy::Bfs, u64::MAX, false);
    assert_eq!(a.stats.visited, c.stats.visited, "DFS/BFS visited differ");
    assert_eq!(a.stats.dedup_hits, c.stats.dedup_hits);
    assert_eq!(a.stats.edges, c.stats.edges);
    assert_eq!(a.stats.terminals, c.stats.terminals);
    assert_eq!(a.stats.pruned_capacity, c.stats.pruned_capacity);
    assert_eq!(a.stats.pruned_inadmissible, c.stats.pruned_inadmissible);
    assert!(a.violation.is_none() && c.violation.is_none());
}

#[test]
fn quick_and_flex_scopes_verify_exhaustively() {
    let problem = McProblem::build();
    for (scope, expect_visited) in [(Scope::quick(), 4054u64), (Scope::flex(), 5044u64)] {
        let out = explore(&scope, &problem, Strategy::Dfs, u64::MAX, false);
        assert!(!out.truncated, "{}: sweep truncated", scope.name);
        assert!(
            out.violation.is_none(),
            "{}: unexpected violation: {:?}",
            scope.name,
            out.violation
        );
        assert_eq!(
            out.stats.visited, expect_visited,
            "{}: explored state count drifted — transition relation changed",
            scope.name
        );
    }
}

#[test]
fn reorder_scope_rediscovers_the_out_of_order_class() {
    let scope = Scope::reorder();
    let problem = McProblem::build();
    let out = explore(&scope, &problem, Strategy::Dfs, u64::MAX, true);
    let found = out
        .violation
        .expect("reorder probe found nothing — channel model lost out-of-order delivery");
    assert_eq!(found.violation.property, Property::Reorder);
    let (trace, _) = rebuild(&scope, &problem, &found.path);
    assert!(
        has_label_regression(&trace, scope.workers),
        "rebuilt witness lost the regression"
    );
}
