//! End-to-end integration: the full pipeline from problem construction
//! through asynchronous execution to trace analysis and Theorem-1
//! verification, across crate boundaries — all runs expressed through
//! the unified `Session` API.

use asynciter::core::theory;
use asynciter::models::conditions::{check_condition_a, check_condition_c};
use asynciter::models::epoch::epoch_sequence;
use asynciter::models::macroiter::{
    boundary_freshness_violations, macro_iterations, macro_iterations_strict,
};
use asynciter::numerics::vecops;
use asynciter::opt::prox::L1;
use asynciter::opt::proxgrad::{gamma_max, SeparableProxGrad, SparseProxGrad};
use asynciter::opt::quadratic::{SeparableQuadratic, SparseQuadratic};
use asynciter::prelude::*;

/// The paper's headline pipeline: Definition-4 operator + admissible
/// schedule → replay → strict macro-iterations → inequality (5).
#[test]
fn theorem1_pipeline_separable() {
    let n = 48;
    let f = SeparableQuadratic::random(n, 1.0, 6.0, 11).unwrap();
    let gamma = gamma_max(1.0, 6.0);
    let op = SeparableProxGrad::new(f, L1::new(0.1), gamma).unwrap();
    let rho = op.rho();
    let (xstar, _) = op.solve_exact().unwrap();
    let x0 = vec![0.0; n];

    let run = Session::new(&op)
        .steps(12_000)
        .schedule(UnboundedSqrtDelay::new(n, n / 4, n / 2, 1.0, 5))
        .x0(x0.clone())
        .xstar(xstar.clone())
        .error_every(50)
        .record(RecordMode::Full)
        .backend(Replay)
        .run()
        .unwrap();

    let trace = run.trace.as_ref().expect("trace recorded");
    check_condition_a(trace).unwrap();
    let macros = macro_iterations_strict(trace);
    assert!(macros.count() > 5, "macro-iterations must complete");
    assert_eq!(boundary_freshness_violations(trace, &macros.boundaries), 0);
    let r0 = theory::initial_error_sq(&x0, &xstar);
    let worst = theory::thm1_worst_ratio(&run.errors, &macros, rho, r0, 1e-12);
    assert!(worst <= 1.0, "Theorem 1 violated: {worst}");
}

/// Flexible communication with constraint-(3) enforcement is a certified
/// Definition-3 iteration: it converges and obeys the bound.
#[test]
fn theorem1_pipeline_flexible() {
    let n = 32;
    let f = SeparableQuadratic::random(n, 1.0, 4.0, 3).unwrap();
    let gamma = gamma_max(1.0, 4.0);
    let op = SeparableProxGrad::new(f, L1::new(0.05), gamma).unwrap();
    let rho = op.rho();
    let (xstar, _) = op.solve_exact().unwrap();
    let x0 = vec![0.0; n];

    let run = Session::new(&op)
        .steps(3_000)
        .schedule(BlockRoundRobin::new(Partition::blocks(n, 4).unwrap(), 6))
        .x0(x0.clone())
        .xstar(xstar.clone())
        .error_every(20)
        .record(RecordMode::Full)
        .backend(Flexible {
            m: 4,
            partial: true,
            publish_period: Some(1),
            enforce_constraint: true,
            ..Flexible::default()
        })
        .run()
        .unwrap();
    assert!(run.partial_reads > 0, "partials must actually be consumed");

    let trace = run.trace.as_ref().expect("trace recorded");
    let macros = macro_iterations_strict(trace);
    let r0 = theory::initial_error_sq(&x0, &xstar);
    let worst = theory::thm1_worst_ratio(&run.errors, &macros, rho, r0, 1e-12);
    assert!(
        worst <= 1.0,
        "Theorem 1 violated under flexible comm: {worst}"
    );
    assert!(run.final_error(&xstar) < 1e-9);
}

/// Threaded runtime → recorded trace → offline analysis → deterministic
/// replay of the *same* schedule through the replay backend.
#[test]
fn threaded_trace_analysis_and_replay() {
    let n = 32;
    let f = SparseQuadratic::random_diag_dominant(n, 3, 0.4, 1.0, 9).unwrap();
    use asynciter::opt::traits::SmoothObjective;
    let gamma = 0.9 * gamma_max(f.strong_convexity(), f.lipschitz());
    let op = SparseProxGrad::new(f, L1::new(0.05), gamma).unwrap();
    let (xstar, _) = op.solve_exact().unwrap();
    let partition = Partition::blocks(n, 4).unwrap();

    // Run until the residual target is met so the recorded schedule is
    // guaranteed to contain a converging macro-iteration structure even
    // on single-core hosts where thread interleaving is coarse.
    let run = Session::new(&op)
        .steps(400_000)
        .stopping(StoppingRule::Residual {
            eps: 1e-12,
            check_every: 64,
        })
        .record(RecordMode::Full)
        .backend(SharedMem {
            threads: 4,
            partition: Some(partition.clone()),
            spin: vec![200; 4],
            ..SharedMem::default()
        })
        .run()
        .unwrap();
    let trace = run.trace.expect("trace recorded");

    // Offline analysis: condition (a), coverage, macro/epoch structure.
    check_condition_a(&trace).unwrap();
    check_condition_c(&trace, trace.len() as u64).unwrap();
    let lit = macro_iterations(&trace);
    let strict = macro_iterations_strict(&trace);
    assert!(lit.count() >= strict.count());
    assert_eq!(boundary_freshness_violations(&trace, &strict.boundaries), 0);
    let epochs = epoch_sequence(&trace, &partition, 2);
    assert!(epochs.count() >= strict.count());

    // Deterministic replay of the recorded schedule reproduces a
    // convergent run (values need not match the racy original, but the
    // schedule is admissible so the replay must converge too).
    let steps = trace.len() as u64;
    let rep = Session::new(&op)
        .steps(steps)
        .schedule(RecordedSchedule::new(trace).unwrap())
        .xstar(xstar.clone())
        .backend(Replay)
        .run()
        .unwrap();
    let err = rep.final_error(&xstar);
    assert!(err < 1e-6, "replayed schedule did not converge: {err}");
}

/// The \[15\]-style macro-contraction stopping rule certifies its target
/// accuracy for a coupled prox-gradient operator under out-of-order
/// delays.
#[test]
fn macro_contraction_stopping_certifies() {
    let n = 24;
    let f = SparseQuadratic::random_diag_dominant(n, 3, 0.3, 1.0, 21).unwrap();
    use asynciter::opt::traits::SmoothObjective;
    let gamma = 0.9 * gamma_max(f.strong_convexity(), f.lipschitz());
    let op = SparseProxGrad::new(f, L1::new(0.1), gamma).unwrap();
    let (xstar, _) = op.solve_exact().unwrap();
    let alpha = op.contraction_factor();
    let eps = 1e-7;

    let run = Session::new(&op)
        .steps(10_000_000)
        .schedule(ChaoticBounded::new(n, n / 4, n / 2, 16, false, 2))
        .stopping(StoppingRule::MacroContraction {
            eps,
            alpha,
            norm: WeightedMaxNorm::uniform(n),
        })
        .backend(Replay)
        .run()
        .unwrap();
    assert!(run.stopped_early);
    let err = run.final_error(&xstar);
    assert!(err <= eps, "certified {eps} but true error {err}");
}

/// Sanity: the same operator under five different delay regimes lands on
/// the same fixed point — one session per schedule, nothing else varies.
#[test]
fn all_regimes_agree_on_the_fixed_point() {
    let n = 24;
    let f = SparseQuadratic::random_diag_dominant(n, 3, 0.4, 1.0, 31).unwrap();
    use asynciter::opt::traits::SmoothObjective;
    let gamma = 0.8 * gamma_max(f.strong_convexity(), f.lipschitz());
    let op = SparseProxGrad::new(f, L1::new(0.08), gamma).unwrap();
    let (xstar, _) = op.solve_exact().unwrap();

    let gens: Vec<Box<dyn ScheduleGen>> = vec![
        Box::new(SyncJacobi::new(n)),
        Box::new(CyclicCoordinate::new(n)),
        Box::new(ChaoticBounded::new(n, n / 4, n / 2, 20, false, 4)),
        Box::new(UnboundedSqrtDelay::new(n, n / 4, n / 2, 1.5, 5)),
        Box::new(HeavyTailDelay::new(n, n / 4, n / 2, 1.3, 6)),
    ];
    for gen in gens {
        let desc = gen.describe();
        let run = Session::new(&op)
            .steps(30_000)
            .schedule(gen)
            .backend(Replay)
            .run()
            .unwrap();
        let err = vecops::max_abs_diff(&run.final_x, &xstar);
        assert!(err < 1e-8, "{desc}: error {err}");
    }
}
