//! End-to-end integration: the full pipeline from problem construction
//! through asynchronous execution to trace analysis and Theorem-1
//! verification, across crate boundaries.

use asynciter::core::engine::{EngineConfig, ReplayEngine};
use asynciter::core::flexible::{FlexibleConfig, FlexibleEngine};
use asynciter::core::stopping::StoppingRule;
use asynciter::core::theory;
use asynciter::models::conditions::{check_condition_a, check_condition_c};
use asynciter::models::epoch::epoch_sequence;
use asynciter::models::macroiter::{
    boundary_freshness_violations, macro_iterations, macro_iterations_strict,
};
use asynciter::models::partition::Partition;
use asynciter::models::schedule::{ChaoticBounded, RecordedSchedule, UnboundedSqrtDelay};
use asynciter::models::LabelStore;
use asynciter::numerics::norm::WeightedMaxNorm;
use asynciter::numerics::vecops;
use asynciter::opt::prox::L1;
use asynciter::opt::proxgrad::{gamma_max, SeparableProxGrad, SparseProxGrad};
use asynciter::opt::quadratic::{SeparableQuadratic, SparseQuadratic};
use asynciter::runtime::async_engine::{AsyncConfig, AsyncSharedRunner, TraceRecord};

/// The paper's headline pipeline: Definition-4 operator + admissible
/// schedule → replay → strict macro-iterations → inequality (5).
#[test]
fn theorem1_pipeline_separable() {
    let n = 48;
    let f = SeparableQuadratic::random(n, 1.0, 6.0, 11).unwrap();
    let gamma = gamma_max(1.0, 6.0);
    let op = SeparableProxGrad::new(f, L1::new(0.1), gamma).unwrap();
    let rho = op.rho();
    let (xstar, _) = op.solve_exact().unwrap();
    let x0 = vec![0.0; n];

    let mut gen = UnboundedSqrtDelay::new(n, n / 4, n / 2, 1.0, 5);
    let cfg = EngineConfig::fixed(12_000).with_error_every(50);
    let run = ReplayEngine::run(&op, &x0, &mut gen, &cfg, Some(&xstar)).unwrap();

    check_condition_a(&run.trace).unwrap();
    let macros = macro_iterations_strict(&run.trace);
    assert!(macros.count() > 5, "macro-iterations must complete");
    assert_eq!(
        boundary_freshness_violations(&run.trace, &macros.boundaries),
        0
    );
    let r0 = theory::initial_error_sq(&x0, &xstar);
    let worst = theory::thm1_worst_ratio(&run.errors, &macros, rho, r0, 1e-12);
    assert!(worst <= 1.0, "Theorem 1 violated: {worst}");
}

/// Flexible communication with constraint-(3) enforcement is a certified
/// Definition-3 iteration: it converges and obeys the bound.
#[test]
fn theorem1_pipeline_flexible() {
    let n = 32;
    let f = SeparableQuadratic::random(n, 1.0, 4.0, 3).unwrap();
    let gamma = gamma_max(1.0, 4.0);
    let op = SeparableProxGrad::new(f, L1::new(0.05), gamma).unwrap();
    let rho = op.rho();
    let (xstar, _) = op.solve_exact().unwrap();
    let x0 = vec![0.0; n];

    let mut gen = asynciter::models::schedule::BlockRoundRobin::new(
        Partition::blocks(n, 4).unwrap(),
        6,
    );
    let cfg = FlexibleConfig::new(3_000, 4)
        .with_publish_period(1)
        .with_error_every(20)
        .with_enforcement();
    let norm = WeightedMaxNorm::uniform(n);
    let run = FlexibleEngine::run(&op, &x0, &mut gen, &cfg, &norm, Some(&xstar)).unwrap();
    assert!(run.partial_reads > 0, "partials must actually be consumed");

    let macros = macro_iterations_strict(&run.trace);
    let r0 = theory::initial_error_sq(&x0, &xstar);
    let worst = theory::thm1_worst_ratio(&run.errors, &macros, rho, r0, 1e-12);
    assert!(worst <= 1.0, "Theorem 1 violated under flexible comm: {worst}");
    assert!(vecops::max_abs_diff(&run.final_x, &xstar) < 1e-9);
}

/// Threaded runtime → recorded trace → offline analysis → deterministic
/// replay of the *same* schedule through the replay engine.
#[test]
fn threaded_trace_analysis_and_replay() {
    let n = 32;
    let f = SparseQuadratic::random_diag_dominant(n, 3, 0.4, 1.0, 9).unwrap();
    use asynciter::opt::traits::SmoothObjective;
    let gamma = 0.9 * gamma_max(f.strong_convexity(), f.lipschitz());
    let op = SparseProxGrad::new(f, L1::new(0.05), gamma).unwrap();
    let (xstar, _) = op.solve_exact().unwrap();
    let partition = Partition::blocks(n, 4).unwrap();

    let cfg = AsyncConfig::new(4, 4_000)
        .with_record(TraceRecord::Full)
        .with_spin(vec![200; 4]);
    let run = AsyncSharedRunner::run(&op, &vec![0.0; n], &partition, &cfg).unwrap();
    let trace = run.trace.expect("trace recorded");

    // Offline analysis: condition (a), coverage, macro/epoch structure.
    check_condition_a(&trace).unwrap();
    check_condition_c(&trace, trace.len() as u64).unwrap();
    let lit = macro_iterations(&trace);
    let strict = macro_iterations_strict(&trace);
    assert!(lit.count() >= strict.count());
    assert_eq!(
        boundary_freshness_violations(&trace, &strict.boundaries),
        0
    );
    let epochs = epoch_sequence(&trace, &partition, 2);
    assert!(epochs.count() >= strict.count());

    // Deterministic replay of the recorded schedule reproduces a
    // convergent run (values need not match the racy original, but the
    // schedule is admissible so the replay must converge too).
    let mut replay = RecordedSchedule::new(trace.clone()).unwrap();
    let steps = trace.len() as u64;
    let rep = ReplayEngine::run(
        &op,
        &vec![0.0; n],
        &mut replay,
        &EngineConfig::fixed(steps),
        Some(&xstar),
    )
    .unwrap();
    let err = vecops::max_abs_diff(&rep.final_x, &xstar);
    assert!(err < 1e-6, "replayed schedule did not converge: {err}");
}

/// The \[15\]-style macro-contraction stopping rule certifies its target
/// accuracy for a coupled prox-gradient operator under out-of-order
/// delays.
#[test]
fn macro_contraction_stopping_certifies() {
    let n = 24;
    let f = SparseQuadratic::random_diag_dominant(n, 3, 0.3, 1.0, 21).unwrap();
    use asynciter::opt::traits::SmoothObjective;
    let gamma = 0.9 * gamma_max(f.strong_convexity(), f.lipschitz());
    let op = SparseProxGrad::new(f, L1::new(0.1), gamma).unwrap();
    let (xstar, _) = op.solve_exact().unwrap();
    let alpha = op.contraction_factor();
    let eps = 1e-7;

    let mut gen = ChaoticBounded::new(n, n / 4, n / 2, 16, false, 2);
    let cfg = EngineConfig::fixed(10_000_000)
        .with_labels(LabelStore::MinOnly)
        .with_stopping(StoppingRule::MacroContraction {
            eps,
            alpha,
            norm: WeightedMaxNorm::uniform(n),
        });
    let run = ReplayEngine::run(&op, &vec![0.0; n], &mut gen, &cfg, None).unwrap();
    assert!(run.stopped_early);
    let err = vecops::max_abs_diff(&run.final_x, &xstar);
    assert!(err <= eps, "certified {eps} but true error {err}");
}

/// Sanity: the same operator under five different delay regimes lands on
/// the same fixed point.
#[test]
fn all_regimes_agree_on_the_fixed_point() {
    use asynciter::models::schedule::{
        CyclicCoordinate, HeavyTailDelay, ScheduleGen, SyncJacobi,
    };
    let n = 24;
    let f = SparseQuadratic::random_diag_dominant(n, 3, 0.4, 1.0, 31).unwrap();
    use asynciter::opt::traits::SmoothObjective;
    let gamma = 0.8 * gamma_max(f.strong_convexity(), f.lipschitz());
    let op = SparseProxGrad::new(f, L1::new(0.08), gamma).unwrap();
    let (xstar, _) = op.solve_exact().unwrap();

    let gens: Vec<Box<dyn ScheduleGen>> = vec![
        Box::new(SyncJacobi::new(n)),
        Box::new(CyclicCoordinate::new(n)),
        Box::new(ChaoticBounded::new(n, n / 4, n / 2, 20, false, 4)),
        Box::new(UnboundedSqrtDelay::new(n, n / 4, n / 2, 1.5, 5)),
        Box::new(HeavyTailDelay::new(n, n / 4, n / 2, 1.3, 6)),
    ];
    for mut gen in gens {
        let run = ReplayEngine::run(
            &op,
            &vec![0.0; n],
            gen.as_mut(),
            &EngineConfig::fixed(30_000).with_labels(LabelStore::MinOnly),
            None,
        )
        .unwrap();
        let err = vecops::max_abs_diff(&run.final_x, &xstar);
        assert!(err < 1e-8, "{}: error {err}", gen.describe());
    }
}
