//! Tier-1 conformance suite: the fixed-seed corpus and a miniature
//! fuzz campaign, run on every `cargo test`.
//!
//! The full campaign lives behind `cargo run -p asynciter-bench --bin
//! conformance -- --quick`; this suite keeps the always-on pieces
//! cheap: corpus regeneration equality (generator determinism),
//! witness acceptance/rejection, replayability of committed
//! counterexamples, and a handful of live fuzz cases per problem.

use asynciter::conformance::cluster::has_label_regression;
use asynciter::conformance::corpus::{self, CORPUS_STEPS};
use asynciter::conformance::oracle::cluster_degenerates_to_replay;
use asynciter::conformance::runner::{
    cluster_reorder_demo, inject_cluster_fault_demo, inject_fault_demo, run_campaign,
    CampaignConfig,
};
use asynciter::conformance::{ConformanceProblem, ProblemKind};
use asynciter::models::conditions::check_condition_a;
use asynciter::models::macroiter::macro_iterations;
use asynciter::prelude::*;
use std::path::Path;

const CORPUS_DIR: &str = "tests/corpus";

#[test]
fn corpus_seed_traces_match_their_plans_bit_for_bit() {
    let plans = corpus::seed_plans();
    assert_eq!(plans.len(), 15, "canonical corpus is 5 problems x 3 plans");
    for (stem, plan) in plans {
        let path = Path::new(CORPUS_DIR).join(format!("{stem}.trace"));
        let committed = corpus::load_trace(&path)
            .unwrap_or_else(|e| panic!("{stem}: missing committed trace ({e})"));
        let regen = plan.record_trace();
        assert_eq!(committed.len() as u64, CORPUS_STEPS, "{stem}: wrong length");
        assert_eq!(regen.len(), committed.len(), "{stem}: generator drift");
        for j in 1..=committed.len() as u64 {
            assert_eq!(
                regen.step(j).active,
                committed.step(j).active,
                "{stem}: active drift at j={j}"
            );
            assert_eq!(
                regen.labels(j).unwrap(),
                committed.labels(j).unwrap(),
                "{stem}: label drift at j={j}"
            );
        }
        plan.witness()
            .check(&committed)
            .unwrap_or_else(|e| panic!("{stem}: witness rejected committed trace: {e}"));
    }
}

#[test]
fn corpus_traces_satisfy_model_invariants_and_replay_deterministically() {
    let entries = corpus::load_dir(Path::new(CORPUS_DIR)).expect("committed corpus loads");
    assert!(entries.len() >= 25, "corpus unexpectedly small");
    let problems: Vec<ConformanceProblem> = ProblemKind::ALL
        .iter()
        .map(|&k| ConformanceProblem::build(k))
        .collect();
    for (path, trace) in entries {
        check_condition_a(&trace)
            .unwrap_or_else(|e| panic!("{}: condition (a) failed: {e}", path.display()));
        let boundaries = macro_iterations(&trace).boundaries;
        assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "{}: macro boundaries not increasing",
            path.display()
        );
        let problem = problems
            .iter()
            .find(|p| p.n() == trace.n())
            .unwrap_or_else(|| panic!("{}: no problem of dim {}", path.display(), trace.n()));
        let run = |t: Trace| {
            Session::new(problem.op.as_ref())
                .x0(problem.x0.clone())
                .replay_trace(t)
                .unwrap()
                .run()
                .unwrap()
        };
        let a = run(trace.clone());
        let b = run(trace);
        assert_eq!(
            a.final_x,
            b.final_x,
            "{}: replay not deterministic",
            path.display()
        );
    }
}

#[test]
fn fault_fixture_reproduces_from_the_demo() {
    // The committed counterexample is the deterministic output of the
    // inject-fault demo: corrupt, shrink, persist. Re-running the demo
    // must reproduce the committed file byte for byte.
    let committed = Path::new(CORPUS_DIR).join("fault-frozen-label.trace");
    let dir = std::env::temp_dir().join("asynciter-conformance-tier1-fault");
    let _ = std::fs::remove_dir_all(&dir);
    let fresh = dir.join("fault.trace");
    let (orig, shrunk) = inject_fault_demo(0xA5A5, &fresh).expect("demo runs");
    assert_eq!(orig, 400);
    assert!(
        shrunk <= 20,
        "counterexample no longer minimal: {shrunk} steps"
    );
    let a = std::fs::read_to_string(&committed).expect("committed fixture exists");
    let b = std::fs::read_to_string(&fresh).unwrap();
    assert_eq!(a, b, "shrinker output drifted from the committed fixture");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mini_campaign_with_corpus_passes() {
    let fault_dir = std::env::temp_dir().join("asynciter-conformance-tier1-campaign");
    let cfg = CampaignConfig {
        mode: "custom".into(),
        cases: 9,
        seed: 0x7E57,
        corpus_dir: Some(CORPUS_DIR.into()),
        fault_dir,
        roundtrip_every: 3,
        flexible_every: 4,
        sim_every: 4,
        cluster_every: 4,
        threaded_every: 5,
        sim_iterations: 150,
        shrink_budget: 20_000,
    };
    let report = run_campaign(&cfg);
    assert!(report.passed(), "failures: {:#?}", report.failures);
    assert_eq!(report.witness_rejections, 2, "negative controls missing");
    assert_eq!(report.corpus_checked, 27, "corpus files not all checked");
    assert_eq!(
        report.problems,
        vec!["jacobi", "lasso", "obstacle", "logistic", "network-flow"]
    );
    assert_eq!(report.oracle_runs["cluster-equivalence"], 3);
    assert_eq!(report.oracle_runs["threaded-equivalence"], 2);
}

// ---------------------------------------------------------------------------
// Cluster (message-passing) corpus locks and negative controls
// ---------------------------------------------------------------------------

#[test]
fn cluster_corpus_traces_match_their_plans_bit_for_bit() {
    let plans = corpus::cluster_plans();
    assert_eq!(plans.len(), 3, "canonical cluster corpus is 3 plans");
    for (stem, plan) in plans {
        let path = Path::new(CORPUS_DIR).join(format!("{stem}.trace"));
        let committed = corpus::load_trace(&path)
            .unwrap_or_else(|e| panic!("{stem}: missing committed trace ({e})"));
        let regen = corpus::record_cluster_trace(&plan);
        assert_eq!(committed.len() as u64, CORPUS_STEPS, "{stem}: wrong length");
        assert_eq!(regen.len(), committed.len(), "{stem}: engine drift");
        for j in 1..=committed.len() as u64 {
            assert_eq!(
                regen.step(j).active,
                committed.step(j).active,
                "{stem}: active drift at j={j}"
            );
            assert_eq!(
                regen.labels(j).unwrap(),
                committed.labels(j).unwrap(),
                "{stem}: label drift at j={j}"
            );
        }
    }
}

#[test]
fn cluster_reorder_fixture_reproduces_from_the_demo() {
    // The committed counterexample is the deterministic output of the
    // reorder demo: record an out-of-order cluster run, shrink to a
    // minimal exhibit of per-worker label regression, persist.
    // Re-running the demo must reproduce the committed file byte for
    // byte.
    let committed = Path::new(CORPUS_DIR).join("fault-cluster-reorder.trace");
    let dir = std::env::temp_dir().join("asynciter-conformance-tier1-reorder");
    let _ = std::fs::remove_dir_all(&dir);
    let fresh = dir.join("fault.trace");
    let (orig, shrunk) = cluster_reorder_demo(0xA5A5, &fresh).expect("demo runs");
    assert_eq!(orig, 240);
    assert!(
        shrunk <= 40,
        "counterexample no longer minimal: {shrunk} steps"
    );
    let a = std::fs::read_to_string(&committed).expect("committed fixture exists");
    let b = std::fs::read_to_string(&fresh).unwrap();
    assert_eq!(a, b, "shrinker output drifted from the committed fixture");
    // And the fixture really exhibits out-of-order application.
    let trace = corpus::load_trace(&committed).unwrap();
    assert!(has_label_regression(&trace, 3));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn threaded_corpus_trace_is_admissible_and_replays_convergently() {
    // The committed threaded trace is one witnessed execution of a racy
    // faulty multi-worker run — it cannot be regenerated, but it must
    // stay an admissible schedule that the Definition-1 engine replays
    // to convergence.
    let path = Path::new(CORPUS_DIR).join("threaded-00.trace");
    let trace = corpus::load_trace(&path).expect("committed threaded trace exists");
    check_condition_a(&trace).expect("condition (a)");
    let problem = ConformanceProblem::build(ProblemKind::Jacobi);
    assert_eq!(trace.n(), problem.n(), "recorded on the Jacobi problem");
    let report = Session::new(problem.op.as_ref())
        .x0(problem.x0.clone())
        .replay_trace(trace)
        .unwrap()
        .run()
        .unwrap();
    assert!(
        report.final_residual <= problem.tol,
        "replayed residual {:.3e} above tolerance",
        report.final_residual
    );
}

#[test]
fn dropping_an_essential_message_is_caught() {
    // Negative control: severing the messages of a block-boundary
    // component must be detected (high consensus residual + frozen
    // remote read labels). If this returns Err the harness has a blind
    // spot.
    let (steps, residual) = inject_cluster_fault_demo(0xA5A5).expect("fault must be caught");
    assert!(steps > 0);
    assert!(residual > 1e-8);
}

#[test]
fn degenerate_cluster_is_bitwise_replay_on_all_problems() {
    for kind in ProblemKind::ALL {
        let problem = ConformanceProblem::build(kind);
        cluster_degenerates_to_replay(&problem, 50)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.id()));
    }
}
