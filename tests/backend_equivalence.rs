//! Backend equivalence: with a serial schedule (all components active,
//! zero delay) the `Replay`, `Barrier { threads: 1 }` and `Sim` backends
//! must produce **bit-identical** iterates on the quickstart problem —
//! they are three executions of the same Eq. (1) sequence — plus
//! edge-case tests for `History::value_at`.

use asynciter::core::engine::History;
use asynciter::opt::prox::L1;
use asynciter::opt::proxgrad::{gamma_max, SeparableProxGrad};
use asynciter::opt::quadratic::SeparableQuadratic;
use asynciter::prelude::*;

/// The quickstart problem: the Definition-4 prox-gradient operator on a
/// random separable quadratic with an ℓ₁ regulariser.
fn quickstart_operator(n: usize) -> SeparableProxGrad<SeparableQuadratic, L1> {
    let (mu, l) = (1.0, 10.0);
    let f = SeparableQuadratic::random(n, mu, l, 42).expect("instance");
    SeparableProxGrad::new(f, L1::new(0.2), gamma_max(mu, l)).expect("operator")
}

/// With a serial schedule (all components active, zero delay) `Replay`,
/// `Barrier { threads: 1 }` and `Sim` execute the same Eq. (1) sequence
/// and must agree **bit for bit** — including their residual accounting.
fn assert_replay_barrier_sim_bitwise(op: &dyn Operator, steps: u64, tag: &str) {
    let n = op.dim();

    // Replay with the synchronous (serial, zero-delay) schedule.
    let replay = Session::new(op)
        .steps(steps)
        .schedule(SyncJacobi::new(n))
        .backend(Replay)
        .run()
        .unwrap();

    // One barrier-synchronous thread: sweeps == synchronous iterations.
    let barrier = Session::new(op)
        .steps(steps)
        .backend(Barrier {
            threads: 1,
            ..Barrier::default()
        })
        .run()
        .unwrap();

    // One simulated processor, unit compute, one inner step per phase.
    let sim = Session::new(op)
        .steps(steps)
        .backend(Sim(SimConfig::uniform(
            Partition::blocks(n, 1).unwrap(),
            steps,
        )))
        .run()
        .unwrap();

    assert_eq!(replay.steps, steps, "{tag}");
    assert_eq!(barrier.steps, steps, "{tag}");
    assert_eq!(sim.steps, steps, "{tag}");
    // Bit-identical, not approximately equal: same arithmetic, same
    // order, same IEEE results.
    for i in 0..n {
        assert_eq!(
            replay.final_x[i].to_bits(),
            barrier.final_x[i].to_bits(),
            "{tag}: replay vs barrier at component {i}"
        );
        assert_eq!(
            replay.final_x[i].to_bits(),
            sim.final_x[i].to_bits(),
            "{tag}: replay vs sim at component {i}"
        );
    }
    // The shared report makes cross-backend accounting directly
    // comparable too.
    assert_eq!(
        replay.final_residual.to_bits(),
        barrier.final_residual.to_bits(),
        "{tag}"
    );
    assert_eq!(
        replay.final_residual.to_bits(),
        sim.final_residual.to_bits(),
        "{tag}"
    );
}

#[test]
fn replay_barrier_sim_bit_identical_on_quickstart() {
    assert_replay_barrier_sim_bitwise(&quickstart_operator(64), 200, "quickstart");
}

#[test]
fn equivalence_holds_with_recording_and_error_curves() {
    let n = 32;
    let steps = 100;
    let op = quickstart_operator(n);
    let (xstar, _) = op.solve_exact().unwrap();

    // Boxed backends implement `Backend`, so runtime backend selection
    // needs no adapter.
    let session = |backend: Box<dyn Backend>| {
        Session::new(&op)
            .steps(steps)
            .xstar(xstar.clone())
            .error_every(10)
            .record(RecordMode::Full)
            .backend(backend)
            .run()
            .unwrap()
    };

    let replay = session(Box::new(Replay));
    let sim = session(Box::new(Sim(SimConfig::uniform(
        Partition::blocks(n, 1).unwrap(),
        steps,
    ))));

    assert_eq!(replay.errors.len(), sim.errors.len());
    for ((ja, ea), (jb, eb)) in replay.errors.iter().zip(&sim.errors) {
        assert_eq!(ja, jb);
        assert_eq!(
            ea.to_bits(),
            eb.to_bits(),
            "error curves diverge at step {ja}"
        );
    }
    // Both traces describe the same synchronous schedule.
    let ta = replay.trace.unwrap();
    let tb = sim.trace.unwrap();
    assert_eq!(ta.len(), tb.len());
    assert_eq!(replay.macro_iterations, sim.macro_iterations);
}

// ---------------------------------------------------------------------------
// The promoted problems: logistic regression and network flow get the
// same cross-backend lockdown as Jacobi/lasso. Their operators share
// subexpressions through the caller-owned scratch paths
// (`update_active_with`), so these tests also pin the scratch kernels'
// bit-identity with plain `component` evaluation across engines.
// ---------------------------------------------------------------------------

/// The gate's quick logistic instance: certified max-norm contractive.
fn logistic_operator() -> asynciter::opt::logistic::LogisticGradOperator {
    asynciter::opt::logistic::LogisticGradOperator::certified_random(8, 48, 2.0, 2022)
        .expect("certified instance")
}

/// The gate's quick network-flow instance: hub-grounded wheel.
fn network_flow_operator() -> asynciter::opt::network_flow::PriceRelaxation {
    use asynciter::opt::network_flow::{NetworkFlowProblem, PriceRelaxation};
    let problem = NetworkFlowProblem::wheel(12, 2022).expect("wheel instance");
    PriceRelaxation::new(problem, 0).expect("hub grounding")
}

#[test]
fn replay_barrier_sim_bit_identical_on_logistic() {
    assert_replay_barrier_sim_bitwise(&logistic_operator(), 120, "logistic");
}

#[test]
fn replay_barrier_sim_bit_identical_on_network_flow() {
    assert_replay_barrier_sim_bitwise(&network_flow_operator(), 150, "network-flow");
}

#[test]
fn cluster_single_worker_matches_replay_bitwise_on_logistic() {
    assert_cluster_degenerates(&logistic_operator(), 120, "logistic");
}

#[test]
fn cluster_single_worker_matches_replay_bitwise_on_network_flow() {
    assert_cluster_degenerates(&network_flow_operator(), 150, "network-flow");
}

// ---------------------------------------------------------------------------
// Cluster degeneracy: one worker, in-order links, no faults == Replay
// ---------------------------------------------------------------------------

/// `Cluster { workers: 1, in-order, faultless }` performs one full-block
/// Jacobi update per step from its own (always fresh) view — exactly the
/// synchronous schedule `Replay` executes by default. The two backends
/// must agree bit for bit.
fn assert_cluster_degenerates(op: &dyn Operator, steps: u64, tag: &str) {
    let cluster = Session::new(op)
        .steps(steps)
        .backend(Cluster {
            workers: 1,
            ..Cluster::default()
        })
        .run()
        .unwrap();
    let replay = Session::new(op).steps(steps).backend(Replay).run().unwrap();
    assert_eq!(cluster.steps, steps, "{tag}");
    for i in 0..op.dim() {
        assert_eq!(
            cluster.final_x[i].to_bits(),
            replay.final_x[i].to_bits(),
            "{tag}: cluster vs replay at component {i}"
        );
    }
    assert_eq!(
        cluster.final_residual.to_bits(),
        replay.final_residual.to_bits(),
        "{tag}"
    );
    // One macro-iteration per synchronous sweep.
    assert_eq!(cluster.macro_iterations, replay.macro_iterations, "{tag}");
}

#[test]
fn cluster_single_worker_matches_replay_bitwise_on_jacobi() {
    let op = asynciter::opt::linear::JacobiOperator::new(
        asynciter::numerics::sparse::tridiagonal(24, 4.0, -1.0),
        vec![1.0; 24],
    )
    .unwrap();
    assert_cluster_degenerates(&op, 200, "jacobi");
}

#[test]
fn cluster_single_worker_matches_replay_bitwise_on_lasso() {
    use asynciter::opt::lasso::LassoProblem;
    use asynciter::opt::proxgrad::SparseProxGrad;
    use asynciter::opt::traits::SmoothObjective;
    let problem = LassoProblem::random(12, 72, 3, 0.05, 0.01, 7).unwrap();
    let q = problem.quadratic.clone();
    let gamma = 0.9 * asynciter::opt::proxgrad::gamma_max(q.strong_convexity(), q.lipschitz());
    let op = SparseProxGrad::new(q, L1::new(problem.lambda), gamma).unwrap();
    assert_cluster_degenerates(&op, 400, "lasso");
}

#[test]
fn cluster_faulty_multiworker_trace_replays_bitwise() {
    // The strong direction: even a lossy, duplicating, out-of-order
    // channel leaves a recorded schedule that the Definition-1 engine
    // re-executes bit for bit.
    let n = 32;
    let op = quickstart_operator(n);
    let cluster = Session::new(&op)
        .steps(600)
        .seed(23)
        .record(RecordMode::Full)
        .backend(Cluster {
            workers: 4,
            hold_prob: 0.35,
            drop_prob: 0.15,
            dup_prob: 0.1,
            partial_prob: 0.4,
            link: LinkModel::Jitter { lo: 1, hi: 7 },
            ..Cluster::default()
        })
        .run()
        .unwrap();
    let replayed = Session::new(&op)
        .replay_trace(cluster.trace.clone().unwrap())
        .unwrap()
        .run()
        .unwrap();
    for i in 0..n {
        assert_eq!(
            cluster.final_x[i].to_bits(),
            replayed.final_x[i].to_bits(),
            "component {i}"
        );
    }
}

// ---------------------------------------------------------------------------
// Threaded cluster: racy runs leave deterministic traces, and one
// free-running worker degenerates to the sequential cluster
// ---------------------------------------------------------------------------

#[test]
fn threaded_faulty_multiworker_trace_is_deterministic_under_replay() {
    // The threaded run itself is racy — the OS picks the interleaving —
    // but whatever schedule it executed is recorded as a producing-step
    // trace, and that trace is a complete determinisation: replaying it
    // twice gives bit-identical iterates, both matching the live run.
    let n = 32;
    let op = quickstart_operator(n);
    let live = Session::new(&op)
        .steps(4_000_000)
        .seed(31)
        .stopping(StoppingRule::Residual {
            eps: 1e-10,
            check_every: 16,
        })
        .record(RecordMode::Full)
        .backend(ThreadedCluster {
            workers: 3,
            hold_prob: 0.3,
            drop_prob: 0.1,
            dup_prob: 0.05,
            partial_prob: 0.4,
            ..ThreadedCluster::default()
        })
        .run()
        .unwrap();
    let trace = live.trace.clone().unwrap();
    let replay = |t: Trace| Session::new(&op).replay_trace(t).unwrap().run().unwrap();
    let (a, b) = (replay(trace.clone()), replay(trace));
    for i in 0..n {
        assert_eq!(
            a.final_x[i].to_bits(),
            b.final_x[i].to_bits(),
            "replay of the threaded trace is not deterministic at component {i}"
        );
        assert_eq!(
            live.final_x[i].to_bits(),
            a.final_x[i].to_bits(),
            "live threaded run diverges from its own trace at component {i}"
        );
    }
}

#[test]
fn threaded_single_worker_matches_sequential_cluster_bitwise() {
    // One free-running worker with a faultless transport executes the
    // sequential cluster's exact step sequence (both engines share the
    // same `produce_block` arithmetic), so the concurrency layer must
    // be a bitwise no-op at workers = 1.
    let op = quickstart_operator(24);
    let steps = 300;
    let threaded = Session::new(&op)
        .steps(steps)
        .backend(ThreadedCluster {
            workers: 1,
            ..ThreadedCluster::default()
        })
        .run()
        .unwrap();
    let cluster = Session::new(&op)
        .steps(steps)
        .backend(Cluster {
            workers: 1,
            ..Cluster::default()
        })
        .run()
        .unwrap();
    assert_eq!(threaded.steps, steps);
    assert_eq!(cluster.steps, steps);
    for i in 0..op.dim() {
        assert_eq!(
            threaded.final_x[i].to_bits(),
            cluster.final_x[i].to_bits(),
            "threaded vs sequential cluster at component {i}"
        );
    }
    assert_eq!(
        threaded.final_residual.to_bits(),
        cluster.final_residual.to_bits()
    );
}

// ---------------------------------------------------------------------------
// History::value_at edge cases
// ---------------------------------------------------------------------------

#[test]
fn history_value_at_label_zero_returns_initial() {
    let mut h = History::new(&[7.5, -2.0]);
    h.push(0, 5, 8.5);
    // Label 0 always addresses x(0), even after updates.
    assert_eq!(h.value_at(0, 0), 7.5);
    assert_eq!(h.value_at(1, 0), -2.0);
}

#[test]
fn history_value_at_beyond_last_update_clamps_to_latest() {
    let mut h = History::new(&[1.0]);
    h.push(0, 3, 2.0);
    h.push(0, 9, 3.0);
    // Any label at or past the last update sees the latest value …
    assert_eq!(h.value_at(0, 9), 3.0);
    assert_eq!(h.value_at(0, 10), 3.0);
    assert_eq!(h.value_at(0, u64::MAX), 3.0);
    // … and labels just before it see the previous one.
    assert_eq!(h.value_at(0, 8), 2.0);
}

#[test]
fn history_value_at_out_of_order_lookups() {
    // Out-of-order queries (labels going backwards between calls) must
    // be pure lookups with no hidden state: interleave old and new
    // labels and expect exact step-function semantics.
    let mut h = History::new(&[0.0]);
    for (j, v) in [(2u64, 10.0), (4, 20.0), (8, 30.0), (16, 40.0)] {
        h.push(0, j, v);
    }
    let expect = |l: u64| match l {
        0..=1 => 0.0,
        2..=3 => 10.0,
        4..=7 => 20.0,
        8..=15 => 30.0,
        _ => 40.0,
    };
    // Deliberately non-monotone query order.
    for l in [16, 3, 8, 0, 15, 4, 2, 7, 1, 100, 5] {
        assert_eq!(h.value_at(0, l), expect(l), "label {l}");
    }
}

#[test]
fn history_assemble_honours_mixed_stale_labels() {
    let mut h = History::new(&[1.0, 2.0, 3.0]);
    h.push(0, 1, 10.0);
    h.push(1, 2, 20.0);
    h.push(2, 3, 30.0);
    let mut out = [0.0; 3];
    // Component 0 fresh, 1 stale (pre-update), 2 beyond-last.
    h.assemble(&[1, 1, 7], &mut out);
    assert_eq!(out, [10.0, 2.0, 30.0]);
}
