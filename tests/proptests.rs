//! Workspace-level property tests: invariants that must hold for *every*
//! admissible schedule, operator and engine combination — executed
//! through the unified `Session` API.
//!
//! Schedules come from the conformance fuzzer's [`SchedulePlan`]
//! sampler (the guarded combinator stack over the whole generator zoo),
//! so each case carries its own admissibility witness, and from the
//! committed seed corpus under `tests/corpus/`.

use asynciter::conformance::corpus;
use asynciter::conformance::plan::{PlanLimits, SchedulePlan};
use asynciter::models::conditions::check_condition_a;
use asynciter::models::macroiter::{
    boundary_freshness_violations, macro_iterations, macro_iterations_strict,
};
use asynciter::numerics::rng::rng;
use asynciter::opt::linear::JacobiOperator;
use asynciter::opt::prox::L1;
use asynciter::opt::proxgrad::{gamma_max, SeparableProxGrad};
use asynciter::opt::quadratic::SeparableQuadratic;
use asynciter::prelude::*;
use proptest::prelude::*;
use std::path::Path;

/// A random guarded plan over `n` components: base generator, random
/// thin/jitter mutations, delay envelope and coverage gap.
fn arbitrary_plan(n: usize, steps: u64) -> impl Strategy<Value = SchedulePlan> {
    (0u64..1_000_000)
        .prop_map(move |seed| SchedulePlan::sample(&mut rng(seed), n, steps, PlanLimits::default()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every plan-generated schedule is accepted by its own
    /// admissibility witness and yields strictly increasing macro
    /// boundaries with zero strict-boundary freshness violations.
    #[test]
    fn schedules_admissible_and_macros_sound(plan in arbitrary_plan(10, 1500)) {
        let trace = plan.record_trace();
        prop_assert!(check_condition_a(&trace).is_ok());
        prop_assert!(plan.witness().check(&trace).is_ok(), "{}", plan.describe());
        let lit = macro_iterations(&trace);
        prop_assert!(lit.boundaries.windows(2).all(|w| w[0] < w[1]));
        let strict = macro_iterations_strict(&trace);
        prop_assert!(strict.count() <= lit.count());
        prop_assert_eq!(
            boundary_freshness_violations(&trace, &strict.boundaries),
            0
        );
    }

    /// For a max-norm contraction, the replay backend converges under
    /// every guarded schedule the sampler can produce.
    #[test]
    fn replay_converges_for_all_sampled_plans(
        plan in arbitrary_plan(12, 6_000),
    ) {
        let op = JacobiOperator::new(
            asynciter::numerics::sparse::tridiagonal(12, 4.0, -1.0),
            vec![1.0; 12],
        ).unwrap();
        let xstar = op.solve_dense_spd().unwrap();
        let run = Session::new(&op)
            .replay_trace(plan.record_trace())
            .unwrap()
            .backend(Replay)
            .run()
            .unwrap();
        let err = run.final_error(&xstar);
        prop_assert!(err < 1e-6, "error {err} under {}", plan.describe());
    }

    /// Theorem 1 holds for random separable instances, random admissible
    /// step sizes and random unbounded-delay schedules.
    #[test]
    fn theorem1_random_instances(
        seed in 0u64..5_000,
        frac in 0.2..1.0f64,
        lam in 0.0..0.5f64,
        c in 0.5..2.0f64,
    ) {
        let n = 16;
        let f = SeparableQuadratic::random(n, 1.0, 8.0, seed).unwrap();
        let gamma = frac * gamma_max(1.0, 8.0);
        let op = SeparableProxGrad::new(f, L1::new(lam), gamma).unwrap();
        let rho = op.rho();
        let (xstar, _) = op.solve_exact().unwrap();
        let x0 = vec![0.0; n];
        let run = Session::new(&op)
            .steps(3_000)
            .schedule(UnboundedSqrtDelay::new(n, n / 4, n / 2, c, seed ^ 0xF00D))
            .x0(x0.clone())
            .xstar(xstar.clone())
            .error_every(25)
            .record(RecordMode::Full)
            .backend(Replay)
            .run()
            .unwrap();
        let macros = macro_iterations_strict(run.trace.as_ref().unwrap());
        let r0 = asynciter::core::theory::initial_error_sq(&x0, &xstar);
        let worst = asynciter::core::theory::thm1_worst_ratio(
            &run.errors, &macros, rho, r0, 1e-12,
        );
        prop_assert!(worst <= 1.0, "ratio {worst}");
    }

    /// The flexible backend with enforcement never violates constraint
    /// (3) in effect and converges for every publish configuration.
    #[test]
    fn flexible_engine_safe_for_all_configs(
        m in 1usize..6,
        p in 1usize..8,
        q in 0.0..1.0f64,
        seed in 0u64..1_000,
    ) {
        let n = 12;
        let op = JacobiOperator::new(
            asynciter::numerics::sparse::tridiagonal(n, 4.0, -1.0),
            vec![1.0; n],
        ).unwrap();
        let xstar = op.solve_dense_spd().unwrap();
        let run = Session::new(&op)
            .steps(1_200)
            .schedule(BlockRoundRobin::new(Partition::blocks(n, 3).unwrap(), 5))
            .xstar(xstar.clone())
            .seed(seed)
            .backend(Flexible {
                m,
                partial: true,
                publish_period: Some(p),
                partial_prob: q,
                enforce_constraint: true,
                ..Flexible::default()
            })
            .run()
            .unwrap();
        prop_assert!(
            run.final_error(&xstar) < 1e-7,
            "m={m} p={p} q={q}"
        );
    }
}

/// The committed corpus is a fixed seed set for the same properties:
/// every archived schedule satisfies condition (a) and sound macro
/// boundaries, exactly like freshly sampled plans.
#[test]
fn corpus_traces_uphold_schedule_properties() {
    let entries = corpus::load_dir(Path::new("tests/corpus")).expect("committed corpus loads");
    assert!(!entries.is_empty());
    for (path, trace) in entries {
        check_condition_a(&trace).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let lit = macro_iterations(&trace);
        assert!(
            lit.boundaries.windows(2).all(|w| w[0] < w[1]),
            "{}: macro boundaries not increasing",
            path.display()
        );
        let strict = macro_iterations_strict(&trace);
        assert_eq!(
            boundary_freshness_violations(&trace, &strict.boundaries),
            0,
            "{}: strict boundaries violate freshness",
            path.display()
        );
    }
}
