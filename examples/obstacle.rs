//! The obstacle problem (paper ref \[26\]): an elastic membrane over a
//! paraboloid bump, solved by asynchronous projected relaxation with
//! monotone convergence from above, with an ASCII rendering of the
//! membrane and its contact set.
//!
//! ```sh
//! cargo run --release --example obstacle
//! ```

use asynciter::opt::obstacle::{ObstacleProblem, ProjectedJacobi};
use asynciter::prelude::*;

fn main() {
    let grid = 28;
    let problem = ObstacleProblem::bump(grid, grid, 0.6).expect("problem");
    let n = problem.dim();
    println!(
        "obstacle problem on a {grid}×{grid} grid (n = {n}): membrane fixed at 0 on the \
         boundary, paraboloid obstacle of height 0.6"
    );

    let reference = problem
        .reference_solution(1e-12, 300_000)
        .expect("reference");
    let op = ProjectedJacobi::new(problem);

    // Asynchronous projected relaxation with FIFO bounded delays,
    // stopped by the oracle rule for the demo.
    let run = Session::new(&op)
        .steps(50_000_000)
        .schedule(ChaoticBounded::new(n, n / 8, n / 2, 12, true, 3))
        .x0(op.upper_start())
        .xstar(reference)
        .stopping(StoppingRule::ErrorBelow {
            eps: 1e-9,
            check_every: n as u64,
        })
        .backend(Replay)
        .run()
        .expect("run");
    println!(
        "asynchronous projected Jacobi reached 1e-9 in {} component updates \
         ({} macro-iterations)",
        run.steps, run.macro_iterations
    );

    let (feas, resid, comp) = op.problem().complementarity_residuals(&run.final_x);
    println!(
        "LCP residuals: feasibility {feas:.1e}, operator {resid:.1e}, complementarity {comp:.1e}"
    );

    // ASCII rendering: contact set (#), lifted membrane (+/·), flat (space).
    let contacts = op.problem().contact_count(&run.final_x, 1e-8);
    println!("\nmembrane height map ('#' = contact with obstacle, {contacts} points):");
    let max_u = run.final_x.iter().cloned().fold(0.0_f64, f64::max);
    for iy in 0..grid {
        let mut line = String::from("  ");
        for ix in 0..grid {
            let k = iy * grid + ix;
            let u = run.final_x[k];
            let psi = op.problem().psi()[k];
            let ch = if (u - psi).abs() <= 1e-8 {
                '#'
            } else if u > 0.66 * max_u {
                '+'
            } else if u > 0.33 * max_u {
                '·'
            } else {
                ' '
            };
            line.push(ch);
        }
        println!("{line}");
    }
    println!("\nmax membrane height: {max_u:.4}");
}
