//! Quickstart: run a totally asynchronous prox-gradient iteration through
//! the unified `Session` API and verify Theorem 1's macro-iteration bound
//! — in ~60 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use asynciter::core::theory;
use asynciter::models::macroiter::macro_iterations_strict;
use asynciter::opt::prox::L1;
use asynciter::opt::proxgrad::{gamma_max, SeparableProxGrad};
use asynciter::opt::quadratic::SeparableQuadratic;
use asynciter::prelude::*;

fn main() {
    // Problem (4) of the paper: min f(x) + g(x) with f separable,
    // L-smooth, mu-strongly convex, and g = lambda*||x||_1.
    let n = 64;
    let (mu, l) = (1.0, 10.0);
    let f = SeparableQuadratic::random(n, mu, l, 42).expect("instance");
    let g = L1::new(0.2);

    // The Definition-4 approximate gradient-type operator with the
    // largest admissible step gamma = 2/(mu+L); rho = gamma*mu.
    let gamma = gamma_max(mu, l);
    let op = SeparableProxGrad::new(f, g, gamma).expect("operator");
    let rho = op.rho();
    let (xstar, solution) = op.solve_exact().expect("fixed point");
    println!("operator: gamma = {gamma:.4}, rho = {rho:.4}");

    // Execute Eq. (1) exactly under a totally asynchronous schedule —
    // random subsets of components updated with random bounded delays,
    // *out of order* (labels can go backwards in time; condition (b)
    // still holds) — and record the error curve.
    let run = Session::new(&op)
        .steps(20_000)
        .schedule(ChaoticBounded::new(n, n / 4, n / 2, 16, false, 7))
        .xstar(xstar.clone())
        .error_every(100)
        .record(RecordMode::Full)
        .backend(Replay)
        .run()
        .expect("run");

    // Theorem 1: ||x(j) - x*||^2 <= (1 - rho)^k * max_i ||x_i(0) - x_i*||^2
    // with k the macro-iteration index of j (Definition 2).
    let trace = run.trace.as_ref().expect("trace recorded");
    let macros = macro_iterations_strict(trace);
    let x0 = vec![0.0; n];
    let r0_sq = theory::initial_error_sq(&x0, &xstar);
    let worst = theory::thm1_worst_ratio(&run.errors, &macros, rho, r0_sq, 1e-12);
    println!(
        "completed {} asynchronous steps = {} macro-iterations",
        run.steps,
        macros.count()
    );
    println!(
        "final error {:.3e}; worst measured^2/bound ratio {:.3e} (<= 1: Theorem 1 holds)",
        run.final_error(&xstar),
        worst
    );
    assert!(worst <= 1.0, "Theorem 1 bound violated");

    // The problem solution is recovered by one final prox.
    println!(
        "solution sparsity: {}/{n} nonzeros",
        solution.iter().filter(|v| v.abs() > 1e-10).count()
    );
}
