//! Convex network flow by distributed asynchronous price relaxation
//! (Bertsekas–El Baz): every node balances itself against its
//! neighbours' current prices — under message passing with reordering,
//! loss and duplication.
//!
//! ```sh
//! cargo run --release --example network_flow
//! ```

use asynciter::core::theory::perron_weights;
use asynciter::numerics::sparse::CsrMatrix;
use asynciter::opt::network_flow::{NetworkFlowProblem, PriceRelaxation};
use asynciter::prelude::*;
use asynciter::runtime::network::{ApplyPolicy, NetConfig, NetworkRunner};

fn main() {
    // A random connected transshipment network with feasible supplies.
    let nodes = 48;
    let problem = NetworkFlowProblem::random(nodes, 72, 2022).expect("instance");
    println!(
        "network: {nodes} nodes, {} arcs, supplies balance to {:.1e}",
        problem.arcs().len(),
        problem.supplies().iter().sum::<f64>()
    );

    let op = PriceRelaxation::new(problem.clone(), 0).expect("operator");
    let exact = problem.exact_prices(0).expect("exact dual");

    // Contraction certificate: the relaxation is NOT an inf-norm
    // contraction (interior rows are stochastic), but it contracts in the
    // weighted max norm built from the Perron vector of its iteration
    // matrix — the classical certificate for totally asynchronous
    // convergence.
    let m = iteration_matrix(&op);
    let (_, sigma) = perron_weights(&m, 10_000).expect("perron");
    println!("Perron-weighted contraction factor σ = {sigma:.4} (< 1)");

    // Distributed execution: 4 machines exchange labelled price messages
    // through a channel that reorders (30%), drops (10%) and duplicates
    // (5%) them.
    // σ ≈ 0.99 means ~2000 effective sweeps for 1e-6: budget accordingly
    // (workers may interleave coarsely on single-core hosts).
    let partition = Partition::blocks(nodes, 4).expect("partition");
    let cfg = NetConfig::new(4, 8_000)
        .with_faults(0.3, 0.1, 0.05)
        .with_policy(ApplyPolicy::KeepFreshest)
        .with_seed(7);
    let run = NetworkRunner::run(&op, &vec![0.0; nodes], &partition, &cfg).expect("run");
    println!(
        "channel: {} sent, {} delivered, {} dropped, {} held (reordered), {} stale-discarded",
        run.stats.sent,
        run.stats.delivered,
        run.stats.dropped,
        run.stats.held,
        run.stats.discarded_stale
    );

    let err = asynciter::numerics::vecops::max_abs_diff(&run.consensus, &exact);
    let resid = problem.balance_residual(&run.consensus);
    println!("price error vs exact dual: {err:.2e}; balance residual: {resid:.2e}");
    assert!(resid < 1e-6, "did not converge");

    // Cross-check through the unified Session API: the same operator
    // under a chaotic out-of-order replay schedule lands on the same
    // prices — message passing and deterministic replay are two backends
    // of one iteration.
    let replay = Session::new(&op)
        .steps(200_000)
        .schedule(ChaoticBounded::new(
            nodes,
            nodes / 4,
            nodes / 2,
            24,
            false,
            8,
        ))
        .backend(Replay)
        .run()
        .expect("replay session");
    let agree = asynciter::numerics::vecops::max_abs_diff(&replay.final_x, &run.consensus);
    println!(
        "session replay backend agrees with message passing to {agree:.2e} \
         ({} macro-iterations)",
        replay.macro_iterations
    );
    assert!(agree < 1e-6, "backends disagree");

    // Recover the primal flows and verify conservation at every node.
    let flows = problem.flows(&run.consensus);
    let div = problem.divergence(&flows);
    let worst = div
        .iter()
        .zip(problem.supplies())
        .map(|(d, s)| (d - s).abs())
        .fold(0.0_f64, f64::max);
    println!(
        "primal flows: cost {:.4}, worst conservation violation {worst:.2e}",
        problem.primal_cost(&flows)
    );
}

/// The linear iteration matrix `|M|` of the grounded relaxation, for the
/// Perron certificate (see experiment E8 for the derivation).
fn iteration_matrix(op: &PriceRelaxation) -> CsrMatrix {
    let p = op.problem();
    let n = p.num_nodes();
    let mut trip: Vec<(usize, usize, f64)> = Vec::new();
    for i in 0..n {
        if i == op.ground() {
            continue;
        }
        let mut kappa = 0.0;
        let mut couplings: std::collections::BTreeMap<usize, f64> = Default::default();
        for a in p.arcs() {
            let other = if a.tail == i {
                Some(a.head)
            } else if a.head == i {
                Some(a.tail)
            } else {
                None
            };
            if let Some(o) = other {
                kappa += 1.0 / a.r;
                *couplings.entry(o).or_insert(0.0) += 1.0 / a.r;
            }
        }
        for (o, w) in couplings {
            if o != op.ground() {
                trip.push((i, o, w / kappa));
            }
        }
    }
    CsrMatrix::from_triplets(n, n, &trip).expect("matrix")
}
