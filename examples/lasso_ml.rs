//! Machine-learning workload (paper §V): train an ℓ₁-regularised
//! regression model with free-running asynchronous worker threads via the
//! `Session` API, then check the result against a sequential reference
//! solver.
//!
//! ```sh
//! cargo run --release --example lasso_ml
//! ```

use asynciter::opt::lasso::LassoProblem;
use asynciter::opt::prox::L1;
use asynciter::opt::proxgrad::{gamma_max, SparseProxGrad};
use asynciter::opt::traits::{SeparableProx, SmoothObjective};
use asynciter::prelude::*;

fn main() {
    // A lasso instance: 128 features, 1024 samples, 12-sparse ground
    // truth, mild noise.
    let n = 128;
    let problem = LassoProblem::random(n, 8 * n, 12, 0.05, 0.01, 2022).expect("instance");
    println!(
        "lasso: n = {n}, m = {}, lambda = {}, ridge boost {:.2e}",
        8 * n,
        problem.lambda,
        problem.ridge_boost
    );

    // Reference solution by cyclic coordinate descent.
    let reference = problem
        .reference_solution(1e-13, 200_000)
        .expect("reference");

    // The Definition-4 prox-gradient operator on the Gram form.
    let q = problem.quadratic.clone();
    let gamma = 0.9 * gamma_max(q.strong_convexity(), q.lipschitz());
    let op = SparseProxGrad::new(q, L1::new(problem.lambda), gamma).expect("operator");

    // Hogwild-style training: 4 threads own 32 coordinates each and
    // update them from inconsistent snapshots without any locks; the
    // residual stopping rule maps onto the runner's target.
    let workers = 4;
    let run = Session::new(&op)
        .steps(2_000_000)
        .stopping(StoppingRule::Residual {
            eps: 1e-12,
            check_every: 64,
        })
        .record(RecordMode::MinOnly)
        .backend(SharedMem {
            threads: workers,
            ..SharedMem::default()
        })
        .run()
        .expect("run");
    println!(
        "async training: {} block updates across {workers} threads in {:.1} ms \
         (final residual {:.2e})",
        run.steps,
        run.wall.as_secs_f64() * 1e3,
        run.final_residual
    );

    // The shared fixed point x* is the Definition-4 fixed point; the
    // model weights are prox(x*).
    let g = L1::new(problem.lambda);
    let weights: Vec<f64> = run
        .final_x
        .iter()
        .enumerate()
        .map(|(i, &v)| g.prox_component(i, v, gamma))
        .collect();
    let err = asynciter::numerics::vecops::max_abs_diff(&weights, &reference);
    println!("agreement with sequential coordinate descent: {err:.2e}");
    assert!(err < 1e-7, "async training diverged from reference");

    let nnz = weights.iter().filter(|v| v.abs() > 1e-8).count();
    println!("learned model: {nnz}/{n} nonzero weights");
}
