//! Distributed routing on the Arpanet (paper §II): asynchronous
//! Bellman–Ford with reordered, lossy, duplicated messages still
//! computes exact shortest-path tables — the 1969 algorithm, replayed.
//!
//! ```sh
//! cargo run --release --example routing_bellman_ford
//! ```

use asynciter::opt::bellman_ford::{BellmanFordOperator, Graph};
use asynciter::prelude::*;
use asynciter::runtime::network::{ApplyPolicy, NetConfig, NetworkRunner};

const NAMES: [&str; 18] = [
    "UCLA",
    "SRI",
    "UCSB",
    "UTAH",
    "BBN",
    "MIT",
    "RAND",
    "SDC",
    "HARVARD",
    "LINCOLN",
    "STANFORD",
    "ILLINOIS",
    "CASE",
    "CMU",
    "AMES",
    "MITRE",
    "BURROUGHS",
    "NBS",
];

fn main() {
    let graph = Graph::arpanet();
    let n = graph.num_nodes();
    let dest = 4; // BBN — everyone routes towards the east-coast hub.
    println!(
        "Arpanet-1971-style topology: {n} IMPs, {} directed links; destination {}",
        graph.num_arcs(),
        NAMES[dest]
    );

    let op = BellmanFordOperator::new(graph, dest).expect("operator");
    let exact = op.exact();

    // Six regional "routers" own three IMPs each; the channel reorders
    // 40%, drops 15% and duplicates 10% of messages.
    let partition = Partition::blocks(n, 6).expect("partition");
    let cfg = NetConfig::new(6, 600)
        .with_faults(0.4, 0.15, 0.1)
        .with_policy(ApplyPolicy::AsReceived)
        .with_seed(1969);
    let run = NetworkRunner::run(&op, &op.initial_estimate(), &partition, &cfg).expect("run");
    println!(
        "channel: {} sent / {} delivered / {} dropped / {} reordered / {} duplicated",
        run.stats.sent,
        run.stats.delivered,
        run.stats.dropped,
        run.stats.held,
        run.stats.duplicated
    );

    println!("\nrouting table (distance to {}):", NAMES[dest]);
    let mut worst = 0.0_f64;
    for i in 0..n {
        let err = (run.consensus[i] - exact[i]).abs();
        worst = worst.max(err);
        println!(
            "  {:<10} {:>8.3}  (exact {:>8.3})",
            NAMES[i], run.consensus[i], exact[i]
        );
    }
    println!("\nworst deviation from Dijkstra: {worst:.2e}");
    assert!(worst < 1e-9, "routing disagrees with Dijkstra");
    println!("asynchronous Bellman–Ford is exact despite loss + reordering + duplication.");

    // The same routing problem through the unified Session API on the
    // deterministic simulator backend: six simulated IMP clusters with
    // jittered links compute the identical table.
    let sim_cfg = SimConfig::uniform(Partition::blocks(n, 6).expect("partition"), 1);
    let sim = Session::new(&op)
        .x0(op.initial_estimate())
        .steps(2_000)
        .backend(Sim(sim_cfg))
        .run()
        .expect("sim session");
    let sim_worst = (0..n)
        .map(|i| (sim.final_x[i] - exact[i]).abs())
        .fold(0.0_f64, f64::max);
    println!(
        "simulator backend: {} phases over {} simulated ticks, worst deviation {sim_worst:.2e}",
        sim.steps,
        sim.sim_time.unwrap_or(0)
    );
    assert!(
        sim_worst < 1e-9,
        "simulated routing disagrees with Dijkstra"
    );
}
