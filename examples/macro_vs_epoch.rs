//! Macro-iterations (Definition 2) vs the epoch sequence of
//! Mishchenko–Iutzeler–Malick on the same trace: why macro-iterations
//! tolerate out-of-order messages and epochs do not (paper §III).
//!
//! The traces are produced by real `Session` replay runs — the recorded
//! trace of a run *is* the `(𝒮, ℒ)` realisation executed.
//!
//! ```sh
//! cargo run --release --example macro_vs_epoch
//! ```

use asynciter::models::conditions::labels_monotone;
use asynciter::models::epoch::epoch_sequence;
use asynciter::models::macroiter::{
    boundary_freshness_violations, macro_iterations, macro_iterations_strict,
};
use asynciter::prelude::*;

fn main() {
    let n = 12;
    let steps = 20_000;
    let partition = Partition::identity(n);
    let op = asynciter::opt::linear::JacobiOperator::new(
        asynciter::numerics::sparse::tridiagonal(n, 4.0, -1.0),
        vec![1.0; n],
    )
    .expect("operator");

    for (name, fifo) in [("FIFO delivery", true), ("out-of-order delivery", false)] {
        let run = Session::new(&op)
            .steps(steps)
            .schedule(ChaoticBounded::new(n, n, n, 48, fifo, 2022))
            .record(RecordMode::Full)
            .backend(Replay)
            .run()
            .expect("replay run");
        let trace = run.trace.expect("trace recorded");
        let monotone = labels_monotone(&trace).expect("full labels");

        let epochs = epoch_sequence(&trace, &partition, 2);
        let literal = macro_iterations(&trace);
        let strict = macro_iterations_strict(&trace);

        println!("── {name} (labels monotone: {monotone}) ──");
        println!(
            "  epochs:                {:>6}   freshness violations: {:>6}",
            epochs.count(),
            boundary_freshness_violations(&trace, &epochs.boundaries)
        );
        println!(
            "  macro-iters (literal): {:>6}   freshness violations: {:>6}",
            literal.count(),
            boundary_freshness_violations(&trace, &literal.boundaries)
        );
        println!(
            "  macro-iters (strict):  {:>6}   freshness violations: {:>6}",
            strict.count(),
            boundary_freshness_violations(&trace, &strict.boundaries)
        );
        println!();
    }

    println!(
        "Epochs count updates per machine and tick at the same rate either way — blind \n\
         to stale reads, they accumulate freshness violations under reordering. \n\
         Macro-iterations are defined through the labels actually read, so their \n\
         boundaries stretch exactly as much as the staleness requires: the paper's \n\
         claim that macro-iterations subsume out-of-order messages, quantified."
    );
}
