//! Macro-iterations (Definition 2) vs the epoch sequence of
//! Mishchenko–Iutzeler–Malick on the same trace: why macro-iterations
//! tolerate out-of-order messages and epochs do not (paper §III).
//!
//! ```sh
//! cargo run --release --example macro_vs_epoch
//! ```

use asynciter::models::conditions::labels_monotone;
use asynciter::models::epoch::epoch_sequence;
use asynciter::models::macroiter::{
    boundary_freshness_violations, macro_iterations, macro_iterations_strict,
};
use asynciter::models::partition::Partition;
use asynciter::models::schedule::{record, ChaoticBounded};
use asynciter::models::LabelStore;

fn main() {
    let n = 12;
    let steps = 20_000;
    let partition = Partition::identity(n);

    for (name, fifo) in [("FIFO delivery", true), ("out-of-order delivery", false)] {
        let mut gen = ChaoticBounded::new(n, n, n, 48, fifo, 2022);
        let trace = record(&mut gen, steps, LabelStore::Full);
        let monotone = labels_monotone(&trace).expect("full labels");

        let epochs = epoch_sequence(&trace, &partition, 2);
        let literal = macro_iterations(&trace);
        let strict = macro_iterations_strict(&trace);

        println!("── {name} (labels monotone: {monotone}) ──");
        println!(
            "  epochs:                {:>6}   freshness violations: {:>6}",
            epochs.count(),
            boundary_freshness_violations(&trace, &epochs.boundaries)
        );
        println!(
            "  macro-iters (literal): {:>6}   freshness violations: {:>6}",
            literal.count(),
            boundary_freshness_violations(&trace, &literal.boundaries)
        );
        println!(
            "  macro-iters (strict):  {:>6}   freshness violations: {:>6}",
            strict.count(),
            boundary_freshness_violations(&trace, &strict.boundaries)
        );
        println!();
    }

    println!(
        "Epochs count updates per machine and tick at the same rate either way — blind \n\
         to stale reads, they accumulate freshness violations under reordering. \n\
         Macro-iterations are defined through the labels actually read, so their \n\
         boundaries stretch exactly as much as the staleness requires: the paper's \n\
         claim that macro-iterations subsume out-of-order messages, quantified."
    );
}
