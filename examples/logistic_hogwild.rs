//! Machine learning per §V of the paper: ℓ₂-regularised logistic
//! regression trained by free-running asynchronous worker threads
//! (Hogwild-style) through the `Session` API, with a diagonal
//! modified-Newton variant (\[25\]) racing the plain gradient operator —
//! the same session, only the operator differs.
//!
//! Unlike the quadratic workloads, the logistic gradient couples every
//! coordinate through the data, so this exercises the regime where the
//! paper's separability assumption does not hold — asynchronous descent
//! still converges for small enough steps, it just leaves the regime of
//! provable `(1−ρ)^k` envelopes.
//!
//! ```sh
//! cargo run --release --example logistic_hogwild
//! ```

use asynciter::opt::logistic::LogisticRegression;
use asynciter::opt::newton::DiagNewton;
use asynciter::opt::proxgrad::GradientOperator;
use asynciter::opt::traits::{Operator, SmoothObjective};
use asynciter::prelude::*;

fn main() {
    // Two well-separated Gaussian classes, 800 samples, 32 features.
    let n = 32;
    let model = LogisticRegression::random(n, 800, 2.5, 0.05, 2022).expect("instance");
    println!(
        "logistic regression: n = {n}, m = {}, lambda = {}, L = {:.2}",
        model.samples(),
        model.lambda(),
        model.lipschitz()
    );
    let reference = model.reference_solution(1e-10, 500_000).expect("reference");
    println!(
        "reference: loss {:.6}, training accuracy {:.1}%",
        model.value(&reference),
        100.0 * model.accuracy(&reference)
    );

    let workers = 4;
    // One session shape for both operators: 400k-update budget, residual
    // target 1e-9, Hogwild backend.
    let train = |op: &dyn Operator| -> RunReport {
        Session::new(op)
            .steps(400_000)
            .stopping(StoppingRule::Residual {
                eps: 1e-9,
                check_every: 64,
            })
            .backend(SharedMem {
                threads: workers,
                ..SharedMem::default()
            })
            .run()
            .expect("training run")
    };

    // Plain asynchronous gradient with the conservative step 1/L.
    let grad = GradientOperator::new(model.clone(), 1.0 / model.lipschitz()).expect("op");
    let run = train(&grad);
    println!(
        "async gradient:  {:>6} block updates, {:>7.1} ms, loss {:.6}, accuracy {:.1}%",
        run.steps,
        run.wall.as_secs_f64() * 1e3,
        model.value(&run.final_x),
        100.0 * model.accuracy(&run.final_x)
    );

    // Diagonal modified Newton ([25]): per-coordinate curvature scaling,
    // frozen at the origin.
    let newton = DiagNewton::at_reference(model.clone(), &vec![0.0; n], 0.9).expect("op");
    let run_n = train(&newton);
    println!(
        "async diag-Newton: {:>4} block updates, {:>7.1} ms, loss {:.6}, accuracy {:.1}%",
        run_n.steps,
        run_n.wall.as_secs_f64() * 1e3,
        model.value(&run_n.final_x),
        100.0 * model.accuracy(&run_n.final_x)
    );

    // Both reach the reference optimum; Newton needs far fewer updates.
    let g_err = asynciter::numerics::vecops::max_abs_diff(&run.final_x, &reference);
    let n_err = asynciter::numerics::vecops::max_abs_diff(&run_n.final_x, &reference);
    println!("weight error vs reference: gradient {g_err:.2e}, newton {n_err:.2e}");
    assert!(g_err < 1e-5 && n_err < 1e-5, "training did not converge");
    assert!(
        run_n.steps < run.steps,
        "diagonal Newton should need fewer updates"
    );
    println!(
        "modified Newton converged in {:.1}x fewer block updates",
        run.steps as f64 / run_n.steps as f64
    );
    let _ = grad.residual_inf(&run.final_x);
}
